//! The protocol invariant registry and the per-event checker.
//!
//! Each [`Invariant`] encodes one property the paper claims for Pahoehoe,
//! phrased over the *observer's* view of a running cluster (the same
//! accessors [`pahoehoe::analysis`] uses). A [`Checker`] installs the whole
//! registry as a [`simnet::Simulation::set_inspector`] hook, so every
//! property is re-examined after **every** processed event — a violation is
//! caught at the earliest event that exhibits it, not at quiescence, and
//! the recorded event index pins it in the message trace. Under the
//! sharded engine the inspector instead fires at every round barrier —
//! the same properties, sampled at the engine's natural consistency
//! points.
//!
//! The registry assumes the cluster runs the **standard workload**
//! ([`Client::standard_workload`]): workload key `i + 1` holds
//! [`Client::synthetic_value`]`(i, value_len)`, which lets the durability
//! invariant reconstruct the expected blob for any acknowledged version
//! without help from the actors under test.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

use erasure::{Checksum, Codec, Fragment};
use pahoehoe::analysis;
use pahoehoe::client::Client;
use pahoehoe::cluster::Cluster;
use pahoehoe::fs::Fs;
use pahoehoe::messages::Message;
use pahoehoe::repair::RepairOptions;
use pahoehoe::topology::{DataCenterId, Topology};
use pahoehoe::types::ObjectVersion;
use pahoehoe::{Metadata, Policy};
use simnet::{Disposition, NodeId, RunOutcome, SimDuration, SimTime, SimView};

/// One observed breach of a protocol invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Events processed when the violation was first observed (an index
    /// into the run; `u64::MAX` for end-of-run checks).
    pub events_processed: u64,
    /// Virtual time of the observation.
    pub sim_time: SimTime,
    /// Human-readable description of the breach.
    pub detail: String,
}

/// The cluster state handed to invariants: the simulation plus the static
/// facts (topology, node ids, workload shape) captured when the checker
/// was installed.
pub struct ClusterView<'a> {
    /// The simulation, mid-run or after the run (either engine).
    pub sim: &'a dyn SimView<Message>,
    /// Cluster topology (which nodes are KLSs/FSs, per data center).
    pub topo: &'a Topology,
    /// All fragment-server node ids.
    pub fss: &'a [NodeId],
    /// All key-lookup-server node ids.
    pub klss: &'a [NodeId],
    /// All client node ids.
    pub clients: &'a [NodeId],
    /// Standard-workload value length (drives blob reconstruction).
    pub value_len: usize,
    /// The durability policy of the workload's puts.
    pub policy: Policy,
    /// The cluster's repair-engine configuration, if any. Invariants that
    /// police the repair policy (e.g. [`RedundancyFloor`]) are vacuous
    /// when this is `None`.
    pub repair: Option<&'a RepairOptions>,
}

/// One checkable protocol property. Implementations may keep state across
/// events (e.g. to detect regressions), which is why both hooks take
/// `&mut self`.
pub trait Invariant {
    /// Stable rule name, used in reports and violation records.
    fn name(&self) -> &'static str;

    /// Checked after every processed simulation event. Return `Err` with a
    /// description to report a violation.
    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        let _ = view;
        Ok(())
    }

    /// Checked once when the run ends, with the run's outcome.
    fn check_final(&mut self, view: &ClusterView<'_>, outcome: RunOutcome) -> Result<(), String> {
        let _ = (view, outcome);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 1: acknowledged puts are durable and decodable.
// ---------------------------------------------------------------------------

/// Once a put is ACKed to a client, at least `k` distinct sibling
/// fragments of that version are stored across the fragment servers, every
/// stored fragment is byte-identical to the systematic encoding of the
/// original blob, and `k` of them decode back to the blob.
///
/// Holds under message-level faults (loss, duplication, outages), which
/// never destroy stored fragments. Runs that destroy disks or corrupt
/// fragments deliberately must not register this invariant.
pub struct AckedDurability {
    codec: Option<Codec>,
    /// Expected encodings, cached per version (encoding is the hot cost).
    expected: BTreeMap<ObjectVersion, Vec<Fragment>>,
    /// Versions whose decode path has already been exercised.
    decoded: BTreeSet<ObjectVersion>,
    /// Reusable scratch for the once-per-version decode check (the
    /// invariant runs after every simulation event, so its allocations are
    /// on the sweep's hot path).
    decode_scratch: Vec<u8>,
}

impl AckedDurability {
    /// Creates the invariant with empty caches.
    pub fn new() -> Self {
        AckedDurability {
            codec: None,
            expected: BTreeMap::new(),
            decoded: BTreeSet::new(),
            decode_scratch: Vec::new(),
        }
    }

    fn expected_fragments(&mut self, ov: ObjectVersion, view: &ClusterView<'_>) -> &[Fragment] {
        let codec = self.codec.get_or_insert_with(|| {
            Codec::new(usize::from(view.policy.k), usize::from(view.policy.n))
                .expect("workload policy is a valid code")
        });
        self.expected.entry(ov).or_insert_with(|| {
            let value = Client::synthetic_value(ov.key.as_u64().wrapping_sub(1), view.value_len);
            codec.encode(&value)
        })
    }
}

impl Default for AckedDurability {
    fn default() -> Self {
        AckedDurability::new()
    }
}

impl Invariant for AckedDurability {
    fn name(&self) -> &'static str {
        "acked-durability"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        let mut acked: BTreeSet<ObjectVersion> = BTreeSet::new();
        for &c in view.clients {
            acked.extend(view.sim.actor::<Client>(c).success_versions().iter());
        }
        for ov in acked {
            let k = usize::from(view.policy.k);
            let mut distinct: BTreeMap<u8, Fragment> = BTreeMap::new();
            // Fragment indices recorded in compaction residuals: the bytes
            // are gone (the version reached AMR — every sibling verified
            // every assigned fragment — before its entry was released), so
            // they count toward redundancy but cannot be byte-checked.
            let mut residual_distinct: BTreeSet<u8> = BTreeSet::new();
            for &fs in view.fss {
                let actor = view.sim.actor::<Fs>(fs);
                let Some(entry) = actor.entry(ov) else {
                    if let Some(held) = actor.compacted_residual(ov) {
                        residual_distinct.extend(held.iter());
                    }
                    continue;
                };
                for (&idx, frag) in &entry.fragments {
                    let expected = &self.expected_fragments(ov, view)[usize::from(idx)];
                    if frag.data().as_ref() != expected.data().as_ref() {
                        return Err(format!(
                            "ACKed {ov:?}: fragment {idx} on {fs:?} differs from the \
                             encoding of the original blob"
                        ));
                    }
                    distinct.entry(idx).or_insert_with(|| frag.clone());
                }
            }
            residual_distinct.extend(distinct.keys().copied());
            if residual_distinct.len() < k {
                return Err(format!(
                    "ACKed {ov:?}: only {} distinct fragments stored or in residuals, \
                     need k = {k}",
                    residual_distinct.len()
                ));
            }
            // The decode check needs actual bytes; run it only while k full
            // fragments still exist (always, unless compaction released
            // them first — in which case AMR verification already ran).
            if distinct.len() >= k && self.decoded.insert(ov) {
                let subset: Vec<Fragment> = distinct.into_values().take(k).collect();
                let mut decoded = std::mem::take(&mut self.decode_scratch);
                let codec = self.codec.as_ref().expect("codec built above");
                codec
                    .decode_into(&subset, view.value_len, &mut decoded)
                    .map_err(|e| format!("ACKed {ov:?}: k fragments failed to decode: {e:?}"))?;
                let expected =
                    Client::synthetic_value(ov.key.as_u64().wrapping_sub(1), view.value_len);
                let matches = decoded == expected.as_ref();
                self.decode_scratch = decoded;
                if !matches {
                    return Err(format!(
                        "ACKed {ov:?}: k fragments decoded to the wrong blob"
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 2: quiescent runs converge to AMR.
// ---------------------------------------------------------------------------

/// A run that ends (converged, or quiescent after its faults healed)
/// leaves **every durable version at maximum redundancy** — the paper's
/// eventual-consistency claim. A run that instead hits its virtual-time
/// deadline or event limit failed to converge, which is itself a
/// violation.
///
/// Only meaningful for fault plans whose faults heal before the run's
/// deadline; the explorer generates exactly such plans.
pub struct QuiescentAmr;

impl Invariant for QuiescentAmr {
    fn name(&self) -> &'static str {
        "amr-convergence"
    }

    fn check_final(&mut self, view: &ClusterView<'_>, outcome: RunOutcome) -> Result<(), String> {
        if !matches!(
            outcome,
            RunOutcome::PredicateSatisfied | RunOutcome::Quiescent
        ) {
            return Err(format!(
                "run failed to converge before its safety limit: {outcome:?}"
            ));
        }
        let durable = analysis::durable_versions(view.sim, view.fss);
        for &ov in &durable {
            if !analysis::is_amr(view.sim, view.topo, ov) {
                return Err(format!(
                    "durable version {ov:?} is not at maximum redundancy at end of run"
                ));
            }
        }
        for &c in view.clients {
            for &ov in view.sim.actor::<Client>(c).success_versions() {
                if !durable.contains(&ov) && !is_compacted_somewhere(view, ov) {
                    return Err(format!("ACKed version {ov:?} is not durable at end of run"));
                }
            }
        }
        Ok(())
    }
}

/// Whether any FS holds a compaction residual for `ov` — evidence the
/// version reached AMR (and so was durable) before its fragment bytes
/// were released.
fn is_compacted_somewhere(view: &ClusterView<'_>, ov: ObjectVersion) -> bool {
    view.fss
        .iter()
        .any(|&fs| view.sim.actor::<Fs>(fs).compacted_residual(ov).is_some())
}

// ---------------------------------------------------------------------------
// Invariant 3: no resurrection of abandoned versions.
// ---------------------------------------------------------------------------

/// Once a fragment server gives up on a version (its `give_up_age`
/// garbage collection), that version never re-enters the server's pending
/// or AMR sets — convergence must not resurrect state the server already
/// discarded.
pub struct NoResurrection {
    gone: BTreeSet<(NodeId, ObjectVersion)>,
}

impl NoResurrection {
    /// Creates the invariant with no abandoned versions recorded.
    pub fn new() -> Self {
        NoResurrection {
            gone: BTreeSet::new(),
        }
    }
}

impl Default for NoResurrection {
    fn default() -> Self {
        NoResurrection::new()
    }
}

impl Invariant for NoResurrection {
    fn name(&self) -> &'static str {
        "no-resurrection"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        for &fs in view.fss {
            let actor = view.sim.actor::<Fs>(fs);
            for ov in actor.pending_versions() {
                if self.gone.contains(&(fs, ov)) {
                    return Err(format!(
                        "{fs:?} resurrected abandoned version {ov:?} into its pending set"
                    ));
                }
            }
            for ov in actor.amr_versions() {
                if self.gone.contains(&(fs, ov)) {
                    return Err(format!(
                        "{fs:?} resurrected abandoned version {ov:?} into its AMR set"
                    ));
                }
            }
            for ov in actor.gave_up_versions() {
                self.gone.insert((fs, ov));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 4: stored fragments match their recorded checksums.
// ---------------------------------------------------------------------------

/// Every fragment a server stores verifies against the content hash
/// recorded when it was durably stored, and every stored fragment *has* a
/// recorded hash — the §3.1 corruption-detection bookkeeping is never
/// stale. Catches any write path that stores or mutates fragment bytes
/// without updating the checksum.
pub struct ChecksumIntegrity;

impl Invariant for ChecksumIntegrity {
    fn name(&self) -> &'static str {
        "checksum-integrity"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        for &fs in view.fss {
            let actor = view.sim.actor::<Fs>(fs);
            for ov in actor.known_versions() {
                let Some(entry) = actor.entry(ov) else {
                    // A known version with no full entry must be a
                    // compaction residual — anything else lost its
                    // checksum bookkeeping.
                    if actor.compacted_residual(ov).is_none() {
                        return Err(format!(
                            "{fs:?} knows {ov:?} but stores neither an entry nor a \
                             compaction residual for it"
                        ));
                    }
                    continue;
                };
                for (&idx, frag) in &entry.fragments {
                    match entry.checksums.get(&idx) {
                        None => {
                            return Err(format!(
                                "{fs:?} stores fragment {idx} of {ov:?} with no recorded checksum"
                            ));
                        }
                        Some(sum) => {
                            if *sum != Checksum::of(frag.data()) {
                                return Err(format!(
                                    "{fs:?} stores fragment {idx} of {ov:?} whose bytes \
                                     mismatch its recorded checksum"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 5: traffic accounting is sane.
// ---------------------------------------------------------------------------

/// The metrics and trace agree with each other and with causality: counters
/// only grow, drops never exceed logical entries, per-kind totals sum to
/// the grand totals, and (when tracing is on) the trace records exactly
/// one event per logical entry — equal to one per physical send unless
/// convergence rounds were batched — with drop dispositions matching the
/// drop counter.
pub struct MetricsSanity {
    prev_total: u64,
    prev_bytes: u64,
    prev_dropped: u64,
    prev_duplicated: u64,
    /// Trace prefix already validated (the trace is append-only).
    trace_seen: usize,
    trace_dropped: u64,
}

impl MetricsSanity {
    /// Creates the invariant with zeroed counters.
    pub fn new() -> Self {
        MetricsSanity {
            prev_total: 0,
            prev_bytes: 0,
            prev_dropped: 0,
            prev_duplicated: 0,
            trace_seen: 0,
            trace_dropped: 0,
        }
    }
}

impl Default for MetricsSanity {
    fn default() -> Self {
        MetricsSanity::new()
    }
}

impl Invariant for MetricsSanity {
    fn name(&self) -> &'static str {
        "metrics-sanity"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        let m = view.sim.metrics();
        let total = m.total_count();
        let bytes = m.total_bytes();
        if total < self.prev_total || bytes < self.prev_bytes {
            return Err(format!(
                "send counters regressed: {} -> {} messages, {} -> {} bytes",
                self.prev_total, total, self.prev_bytes, bytes
            ));
        }
        if m.dropped() < self.prev_dropped || m.duplicated() < self.prev_duplicated {
            return Err("drop/duplicate counters regressed".to_string());
        }
        // Drops and the trace are recorded per *logical entry* (each entry
        // of a coalesced batch traverses the channel individually), so they
        // bound against `total_entries`, which equals `total_count` unless
        // rounds were batched.
        let entries = m.total_entries();
        if entries < total {
            return Err(format!(
                "{entries} logical entries but {total} physical messages sent"
            ));
        }
        if m.dropped() > entries {
            return Err(format!(
                "{} messages dropped but only {} entries ever sent",
                m.dropped(),
                entries
            ));
        }
        let (kind_count, kind_bytes) = m
            .iter()
            .fold((0u64, 0u64), |(c, b), (_, s)| (c + s.count, b + s.bytes));
        if kind_count != total || kind_bytes != bytes {
            return Err(format!(
                "per-kind totals ({kind_count} msgs, {kind_bytes} B) disagree with grand \
                 totals ({total} msgs, {bytes} B)"
            ));
        }
        if let Some(trace) = view.sim.trace() {
            if trace.len() != entries as usize {
                return Err(format!(
                    "trace records {} events but {} message entries were sent",
                    trace.len(),
                    entries
                ));
            }
            for ev in &trace.events()[self.trace_seen..] {
                if ev.disposition != Disposition::Delivered {
                    self.trace_dropped += 1;
                }
            }
            self.trace_seen = trace.len();
            if self.trace_dropped != m.dropped() {
                return Err(format!(
                    "trace shows {} dropped messages, metrics count {}",
                    self.trace_dropped,
                    m.dropped()
                ));
            }
        }
        self.prev_total = total;
        self.prev_bytes = bytes;
        self.prev_dropped = m.dropped();
        self.prev_duplicated = m.duplicated();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 6: durability never regresses.
// ---------------------------------------------------------------------------

/// Once a version is durable (≥ `k` distinct fragments stored), it stays
/// durable. Message-level faults cannot destroy stored fragments, so any
/// shrink of the durable set means an actor deleted fragments it should
/// have kept. Like [`AckedDurability`], not applicable to runs that
/// destroy disks.
pub struct DurableMonotone {
    durable: BTreeSet<ObjectVersion>,
}

impl DurableMonotone {
    /// Creates the invariant with an empty durable set.
    pub fn new() -> Self {
        DurableMonotone {
            durable: BTreeSet::new(),
        }
    }
}

impl Default for DurableMonotone {
    fn default() -> Self {
        DurableMonotone::new()
    }
}

impl Invariant for DurableMonotone {
    fn name(&self) -> &'static str {
        "durable-monotone"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        let now = analysis::durable_versions(view.sim, view.fss);
        // Compaction legitimately removes a version from the durable set
        // (its fragment bytes are released after AMR); any other shrink
        // means an actor deleted fragments it should have kept.
        if let Some(&lost) = self
            .durable
            .difference(&now)
            .find(|&&ov| !is_compacted_somewhere(view, ov))
        {
            return Err(format!(
                "version {lost:?} was durable earlier in the run but is not anymore"
            ));
        }
        self.durable = now;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 7: compaction only ever collapses superseded AMR versions.
// ---------------------------------------------------------------------------

/// Every compaction residual is legitimate: the compacted version settled
/// as AMR on that FS, a strictly newer version of the same key is also
/// settled AMR there (the superseding write), and the version never
/// re-enters the pending set. Together with [`NoResurrection`] this pins
/// the no-resurrection half of the compaction contract; the durability
/// half is [`AckedDurability`]'s residual accounting.
pub struct CompactionSafety;

impl Invariant for CompactionSafety {
    fn name(&self) -> &'static str {
        "compaction-safety"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        for &fs in view.fss {
            let actor = view.sim.actor::<Fs>(fs);
            if actor.compacted_count() == 0 {
                continue;
            }
            let amr: BTreeSet<ObjectVersion> = actor.amr_versions().collect();
            let pending: BTreeSet<ObjectVersion> = actor.pending_versions().collect();
            for ov in actor.compacted_versions() {
                if !amr.contains(&ov) {
                    return Err(format!("{fs:?} compacted {ov:?} which is not settled AMR"));
                }
                if pending.contains(&ov) {
                    return Err(format!(
                        "{fs:?} compacted {ov:?} yet it re-entered the pending set"
                    ));
                }
                let superseded = amr
                    .iter()
                    .any(|&newer| newer.key == ov.key && newer.ts > ov.ts);
                if !superseded {
                    return Err(format!(
                        "{fs:?} compacted {ov:?} with no newer settled-AMR version of \
                         the same key"
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant 8: the repair engine keeps redundancy above its floor.
// ---------------------------------------------------------------------------

/// When a repair engine is configured, no object may *stay*
/// repairable-but-under-protected: a version whose live fragments in some
/// data center fall below `threshold_pct` of that DC's assignment count,
/// while at least `k` fragments survive cluster-wide (so reconstruction is
/// possible), must be restored above the threshold within the policy's
/// grace window. Vacuous for clusters without a repair engine, so it is
/// safe in the always-on registry.
pub struct RedundancyFloor {
    /// When each `(dc, version)` pair was first observed below threshold.
    below_since: BTreeMap<(DataCenterId, ObjectVersion), SimTime>,
}

impl RedundancyFloor {
    /// Creates the invariant with no under-protected versions recorded.
    pub fn new() -> Self {
        RedundancyFloor {
            below_since: BTreeMap::new(),
        }
    }

    fn scan(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        let Some(opts) = view.repair else {
            return Ok(());
        };
        let k = usize::from(view.policy.k);
        let now = view.sim.now();
        struct LiveState {
            per_dc: BTreeMap<DataCenterId, BTreeSet<u8>>,
            global: BTreeSet<u8>,
            meta: Arc<Metadata>,
        }
        let mut live: BTreeMap<ObjectVersion, LiveState> = BTreeMap::new();
        for &fs in view.fss {
            let Some(dc) = view.topo.dc_of(fs) else {
                continue;
            };
            let actor = view.sim.actor::<Fs>(fs);
            for ov in actor.known_versions() {
                let Some(entry) = actor.entry(ov) else {
                    continue;
                };
                let st = live.entry(ov).or_insert_with(|| LiveState {
                    per_dc: BTreeMap::new(),
                    global: BTreeSet::new(),
                    meta: Arc::clone(&entry.meta),
                });
                for &idx in entry.fragments.keys() {
                    st.per_dc.entry(dc).or_default().insert(idx);
                    st.global.insert(idx);
                }
                // Per-DC location decisions are first-writer-wins, so any
                // more complete metadata strictly extends the others.
                if entry.meta.location_count() > st.meta.location_count() {
                    st.meta = Arc::clone(&entry.meta);
                }
            }
        }
        let mut next: BTreeMap<(DataCenterId, ObjectVersion), SimTime> = BTreeMap::new();
        for (&ov, st) in &live {
            // Reconstruction needs k fragments somewhere in the cluster;
            // with fewer the object is lost, not repair-engine-negligent.
            if st.global.len() < k {
                continue;
            }
            for dc in view.topo.dc_ids() {
                let Some(locs) = st.meta.dc_locations(dc) else {
                    continue;
                };
                let target = locs.len();
                let dc_live = st.per_dc.get(&dc).map_or(0, BTreeSet::len);
                let below = dc_live * 100 < opts.threshold_pct as usize * target;
                if !below {
                    continue;
                }
                let since = self.below_since.get(&(dc, ov)).copied().unwrap_or(now);
                let elapsed =
                    SimDuration::from_micros(now.as_micros().saturating_sub(since.as_micros()));
                if elapsed > opts.grace {
                    return Err(format!(
                        "{ov:?} has been repairable but below the redundancy floor in \
                         {dc} for {elapsed:?} (live {dc_live}/{target}, threshold \
                         {}%, grace {:?})",
                        opts.threshold_pct, opts.grace
                    ));
                }
                next.insert((dc, ov), since);
            }
        }
        self.below_since = next;
        Ok(())
    }
}

impl Default for RedundancyFloor {
    fn default() -> Self {
        RedundancyFloor::new()
    }
}

impl Invariant for RedundancyFloor {
    fn name(&self) -> &'static str {
        "redundancy-floor"
    }

    fn check_event(&mut self, view: &ClusterView<'_>) -> Result<(), String> {
        self.scan(view)
    }

    fn check_final(&mut self, view: &ClusterView<'_>, _outcome: RunOutcome) -> Result<(), String> {
        self.scan(view)
    }
}

/// The full registry: every invariant the explorer checks, in reporting
/// order.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(AckedDurability::new()),
        Box::new(QuiescentAmr),
        Box::new(NoResurrection::new()),
        Box::new(ChecksumIntegrity),
        Box::new(MetricsSanity::new()),
        Box::new(DurableMonotone::new()),
        Box::new(CompactionSafety),
        Box::new(RedundancyFloor::new()),
    ]
}

// ---------------------------------------------------------------------------
// The checker: registry + inspector plumbing.
// ---------------------------------------------------------------------------

struct StaticCtx {
    topo: Arc<Topology>,
    fss: Vec<NodeId>,
    klss: Vec<NodeId>,
    clients: Vec<NodeId>,
    value_len: usize,
    policy: Policy,
    repair: Option<RepairOptions>,
}

impl StaticCtx {
    fn view<'a>(&'a self, sim: &'a dyn SimView<Message>) -> ClusterView<'a> {
        ClusterView {
            sim,
            topo: &self.topo,
            fss: &self.fss,
            klss: &self.klss,
            clients: &self.clients,
            value_len: self.value_len,
            policy: self.policy,
            repair: self.repair.as_ref(),
        }
    }
}

struct CheckerState {
    invariants: Vec<Box<dyn Invariant>>,
    ctx: StaticCtx,
    violation: Option<Violation>,
    /// Run the per-event checks every `sample_every` events (1 = every
    /// event). Final checks always run. Sampling trades detection
    /// latency (not soundness of what *is* checked) for throughput on
    /// scale runs, where per-event whole-cluster walks would dominate.
    sample_every: u64,
    events_since_check: u64,
}

impl CheckerState {
    fn check_event(&mut self, sim: &dyn SimView<Message>) {
        if self.violation.is_some() {
            return; // first violation wins; keep the run cheap afterwards
        }
        self.events_since_check += 1;
        if self.events_since_check < self.sample_every {
            return;
        }
        self.events_since_check = 0;
        let view = self.ctx.view(sim);
        for inv in &mut self.invariants {
            if let Err(detail) = inv.check_event(&view) {
                self.violation = Some(Violation {
                    invariant: inv.name(),
                    events_processed: sim.events_processed(),
                    sim_time: sim.now(),
                    detail,
                });
                return;
            }
        }
    }

    fn check_final(&mut self, sim: &dyn SimView<Message>, outcome: RunOutcome) {
        if self.violation.is_some() {
            return;
        }
        let view = self.ctx.view(sim);
        for inv in &mut self.invariants {
            if let Err(detail) = inv.check_final(&view, outcome) {
                self.violation = Some(Violation {
                    invariant: inv.name(),
                    events_processed: u64::MAX,
                    sim_time: sim.now(),
                    detail,
                });
                return;
            }
        }
    }
}

/// Owns a registry of invariants installed as a simulation inspector, and
/// collects the first violation any of them reports.
pub struct Checker {
    state: Rc<RefCell<CheckerState>>,
}

impl Checker {
    /// Installs `invariants` as an inspector on `cluster`'s simulation.
    /// Every invariant's [`check_event`](Invariant::check_event) runs after
    /// each subsequent simulation event; call
    /// [`finish`](Checker::finish) when the run ends to run the final
    /// checks and retrieve the verdict.
    pub fn install(cluster: &mut Cluster, invariants: Vec<Box<dyn Invariant>>) -> Checker {
        Checker::install_sampled(cluster, invariants, 1)
    }

    /// Like [`install`](Checker::install), but runs the per-event checks
    /// only every `sample_every` events. End-of-run checks are unaffected.
    /// Scale runs use this to keep whole-cluster invariant walks off the
    /// per-event hot path while still checking the same properties.
    pub fn install_sampled(
        cluster: &mut Cluster,
        invariants: Vec<Box<dyn Invariant>>,
        sample_every: u64,
    ) -> Checker {
        let ctx = StaticCtx {
            topo: Arc::clone(cluster.topology()),
            fss: cluster.topology().all_fss().collect(),
            klss: cluster.topology().all_klss().collect(),
            clients: cluster.client_ids(),
            value_len: cluster.config().workload_value_len,
            policy: cluster.config().policy,
            repair: cluster.config().convergence.repair.clone(),
        };
        let state = Rc::new(RefCell::new(CheckerState {
            invariants,
            ctx,
            violation: None,
            sample_every: sample_every.max(1),
            events_since_check: 0,
        }));
        let hook = Rc::clone(&state);
        cluster.set_view_inspector(move |sim| hook.borrow_mut().check_event(sim));
        Checker { state }
    }

    /// Installs the [full registry](registry) on `cluster`.
    pub fn install_registry(cluster: &mut Cluster) -> Checker {
        Checker::install(cluster, registry())
    }

    /// Runs every invariant's end-of-run check and returns the first
    /// violation observed anywhere in the run, if any.
    pub fn finish(self, cluster: &Cluster, outcome: RunOutcome) -> Option<Violation> {
        self.state.borrow_mut().check_final(cluster.view(), outcome);
        let state = self.state.borrow();
        state.violation.clone()
    }

    /// The first violation observed so far, without ending the run.
    pub fn violation(&self) -> Option<Violation> {
        self.state.borrow().violation.clone()
    }
}
