//! Scenario sweep, violation shrinking and trace dumping.
//!
//! The explorer is a small explicit-state model checker over the
//! *parameter* space of the simulation: every scenario is a `(seed, fault
//! plan, convergence options)` triple, and a run of a scenario is fully
//! deterministic, so a violating triple **is** a reproduction recipe. The
//! sweep runs the full [invariant registry](crate::invariants::registry)
//! after every simulation event of every scenario; on the first violation
//! it greedily shrinks the triple (dropping outages, zeroing loss and
//! duplication) to the minimal fault plan that still violates, and renders
//! the shrunk run's message trace for offline diagnosis.

use pahoehoe::analysis;
use pahoehoe::client::{Client, ClientOp};
use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, EngineMode};
use pahoehoe::convergence::ConvergenceOptions;
use pahoehoe::fs::{Fs, WAKE_TIMER_TAG};
use pahoehoe::protocol::ProtocolMode;
use pahoehoe::repair::RepairOptions;
use pahoehoe::types::{Key, ObjectVersion};
use pahoehoe::workload::{KeyDistribution, StreamingWorkload};
use simnet::{FaultPlan, NetworkConfig, NodeId, RunOutcome, SimDuration, SimTime};

use crate::invariants::{Checker, Violation};

/// The six convergence configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Naïve convergence (§3.4).
    Naive,
    /// FS AMR indications, synchronized rounds (*FSAMR-S*).
    FsAmrSynchronized,
    /// FS AMR indications, unsynchronized rounds (*FSAMR-U*).
    FsAmrUnsynchronized,
    /// Proxy Put-AMR indications (*PutAMR*).
    PutAmr,
    /// Sibling fragment recovery (*Sibling*).
    Sibling,
    /// Every optimization (*All*).
    All,
}

impl Preset {
    /// All six presets, in the paper's presentation order.
    pub const ALL: [Preset; 6] = [
        Preset::Naive,
        Preset::FsAmrSynchronized,
        Preset::FsAmrUnsynchronized,
        Preset::PutAmr,
        Preset::Sibling,
        Preset::All,
    ];

    /// The paper's label for this configuration.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Naive => "Naive",
            Preset::FsAmrSynchronized => "FSAMR-S",
            Preset::FsAmrUnsynchronized => "FSAMR-U",
            Preset::PutAmr => "PutAMR",
            Preset::Sibling => "Sibling",
            Preset::All => "All",
        }
    }

    /// The corresponding [`ConvergenceOptions`].
    pub fn options(self) -> ConvergenceOptions {
        match self {
            Preset::Naive => ConvergenceOptions::naive(),
            Preset::FsAmrSynchronized => ConvergenceOptions::fs_amr_synchronized(),
            Preset::FsAmrUnsynchronized => ConvergenceOptions::fs_amr_unsynchronized(),
            Preset::PutAmr => ConvergenceOptions::put_amr(),
            Preset::Sibling => ConvergenceOptions::sibling(),
            Preset::All => ConvergenceOptions::all(),
        }
    }
}

/// One scheduled node outage, in layout-independent form: `node` is a raw
/// node index (see [`ClusterLayout`] for the id assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Raw node index of the affected server.
    pub node: u32,
    /// Outage start (seconds of virtual time).
    pub start_secs: u64,
    /// Outage duration (seconds).
    pub dur_secs: u64,
}

/// A fault plan in enumerable, shrinkable form. Rates are in hundredths
/// (integers shrink and compare cleanly; `drop_centi: 5` = 5 % loss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Random message loss, in percent.
    pub drop_centi: u8,
    /// Random message duplication, in percent.
    pub dup_centi: u8,
    /// Scheduled node outages. All must heal well before the scenario's
    /// virtual-time deadline, or the AMR-convergence invariant is not
    /// meaningful.
    pub outages: Vec<Outage>,
}

impl FaultSpec {
    /// No faults at all.
    pub fn clean() -> Self {
        FaultSpec {
            drop_centi: 0,
            dup_centi: 0,
            outages: Vec::new(),
        }
    }

    /// Whether this spec injects any fault.
    pub fn is_clean(&self) -> bool {
        self.drop_centi == 0 && self.dup_centi == 0 && self.outages.is_empty()
    }

    /// The network model this spec induces (paper-default latency).
    pub fn network(&self) -> NetworkConfig {
        NetworkConfig {
            drop_rate: f64::from(self.drop_centi) / 100.0,
            duplicate_rate: f64::from(self.dup_centi) / 100.0,
            ..NetworkConfig::paper_default()
        }
    }

    /// The outage schedule as a simnet fault plan.
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for o in &self.outages {
            plan.add_node_outage(
                NodeId::new(o.node),
                SimTime::ZERO + SimDuration::from_secs(o.start_secs),
                SimDuration::from_secs(o.dur_secs),
            );
        }
        plan
    }

    /// Single-step simplifications of this spec, in shrink preference
    /// order: fewer outages first, then no duplication, then no loss.
    fn simplifications(&self) -> Vec<FaultSpec> {
        let mut out = Vec::new();
        for i in 0..self.outages.len() {
            let mut s = self.clone();
            s.outages.remove(i);
            out.push(s);
        }
        if self.dup_centi > 0 {
            out.push(FaultSpec {
                dup_centi: 0,
                ..self.clone()
            });
        }
        if self.drop_centi > 0 {
            out.push(FaultSpec {
                drop_centi: 0,
                ..self.clone()
            });
        }
        out
    }
}

/// One point of the sweep: a fully deterministic run recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Simulation seed.
    pub seed: u64,
    /// Injected faults.
    pub faults: FaultSpec,
    /// Convergence configuration under test.
    pub preset: Preset,
}

/// Workload shape shared by every scenario of a sweep. Small values keep
/// per-event invariant checking (which hashes and compares every stored
/// fragment) cheap.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// Number of standard-workload puts.
    pub puts: usize,
    /// Value length per put.
    pub value_len: usize,
    /// Rounds of the standard workload. `1` is the historical insert-only
    /// sweep (digests byte-identical to pre-delta builds); `2` makes every
    /// put after the first round an overwrite, so delta-mode sweeps
    /// actually exercise the delta encode/resolve path instead of
    /// vacuously falling back to full stripes.
    pub rounds: usize,
    /// Simulation engine every scenario runs on. `Legacy` (the default)
    /// keeps sweep digests byte-identical to historical recordings;
    /// `Sharded` digests differ from legacy (per-shard RNG streams) but
    /// are byte-identical across worker counts.
    pub engine: EngineMode,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            puts: 3,
            value_len: 4096,
            rounds: 1,
            engine: EngineMode::Legacy,
        }
    }
}

/// A deliberately introduced bug, used to prove the checker catches
/// violations end to end (and by the intentional-bug test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// No bug: the protocols run as implemented.
    None,
    /// After the run converges, silently flip bytes of one stored fragment
    /// without updating its recorded checksum, then let the simulation run
    /// a little longer. The checksum-integrity (and durability) invariants
    /// must flag the very next event.
    CorruptFragment,
}

/// Everything observed about one scenario run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// Events the simulation processed.
    pub events: u64,
    /// Virtual time at end of run.
    pub sim_time: SimTime,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Rendered message trace (only when requested).
    pub trace: Option<String>,
    /// Debug rendering of the traffic metrics — byte-identical across
    /// replays of the same scenario.
    pub metrics_digest: String,
    /// The final AMR ledger ([`amr_digest`]): one line per known object
    /// version with its AMR classification. Identical across *all*
    /// protocol modes for the same scenario — batching and metadata
    /// sharing are representation changes only.
    pub amr_digest: String,
}

/// Renders the cluster's final AMR ledger: every object version any KLS
/// or FS knows, tagged with whether it reached absolute maximum
/// redundancy, plus whether it is durable. Runs of the same scenario
/// under different [`ProtocolMode`]s must produce identical ledgers —
/// this is the cross-run convergence invariant the batched-rounds
/// optimization is checked against.
pub fn amr_digest(cluster: &Cluster) -> String {
    let topo = cluster.topology();
    let fss: Vec<NodeId> = topo.all_fss().collect();
    let klss: Vec<NodeId> = topo.all_klss().collect();
    let sim = cluster.view();
    let durable = analysis::durable_versions(sim, &fss);
    analysis::known_versions(sim, &klss, &fss)
        .iter()
        .map(|&ov| {
            format!(
                "{ov:?} amr={} durable={}\n",
                analysis::is_amr(sim, topo, ov),
                durable.contains(&ov),
            )
        })
        .collect()
}

/// Runs one scenario under the full invariant registry, with the protocol
/// hot-path mode the process-wide switches currently select.
pub fn run_scenario(
    sc: &Scenario,
    wl: &WorkloadCfg,
    injection: Injection,
    want_trace: bool,
) -> ScenarioOutcome {
    run_scenario_pinned(sc, wl, injection, want_trace, ProtocolMode::current())
}

/// Like [`run_scenario`], but pins the cluster to an explicit
/// [`ProtocolMode`] so tests can compare modes side by side without
/// racing on the process-wide switches.
pub fn run_scenario_pinned(
    sc: &Scenario,
    wl: &WorkloadCfg,
    injection: Injection,
    want_trace: bool,
    protocol: ProtocolMode,
) -> ScenarioOutcome {
    let mut cfg = ClusterConfig::paper_default();
    cfg.protocol = protocol;
    cfg.engine = wl.engine;
    cfg.convergence = sc.preset.options();
    cfg.workload_puts = wl.puts;
    cfg.workload_value_len = wl.value_len;
    cfg.workload_rounds = wl.rounds;
    cfg.network = sc.faults.network();
    let mut cluster = Cluster::build_with_faults(cfg, sc.seed, sc.faults.plan());
    cluster.enable_trace();
    let checker = Checker::install_registry(&mut cluster);

    let report = cluster.run_to_convergence();
    if injection == Injection::CorruptFragment {
        inject_corruption(&mut cluster);
    }

    let violation = checker.finish(&cluster, report.outcome);
    let sim = cluster.view();
    ScenarioOutcome {
        violation,
        events: sim.events_processed(),
        sim_time: sim.now(),
        outcome: report.outcome,
        trace: want_trace.then(|| {
            sim.trace()
                .map(|t| t.render())
                .unwrap_or_else(|| "(trace disabled)".to_string())
        }),
        metrics_digest: format!("{:?}", sim.metrics()),
        amr_digest: amr_digest(&cluster),
    }
}

/// Flips one stored fragment's bytes behind the checksum bookkeeping's
/// back, then runs the simulation briefly so the inspector observes the
/// corrupted state.
fn inject_corruption(cluster: &mut Cluster) {
    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();
    let target = fss.iter().find_map(|&fs| {
        let actor: &Fs = cluster.view().actor(fs);
        actor.known_versions().next().and_then(|ov| {
            let entry = actor.entry(ov)?;
            let idx = *entry.fragments.keys().next()?;
            Some((fs, ov, idx))
        })
    });
    let Some((fs, ov, idx)) = target else {
        return; // nothing stored anywhere; nothing to corrupt
    };
    let flipped = cluster.actor_mut::<Fs>(fs).corrupt_fragment(ov, idx);
    debug_assert!(flipped);
    let deadline = cluster.view().now() + SimDuration::from_secs(2);
    cluster.schedule_timer(fs, SimDuration::from_millis(1), WAKE_TIMER_TAG);
    cluster.run_until_time(deadline);
}

/// Greedily shrinks a violating scenario: repeatedly applies the first
/// single-step fault simplification that still violates some invariant,
/// until none does. The seed and preset — the other two coordinates of the
/// repro triple — are preserved.
pub fn shrink(sc: &Scenario, wl: &WorkloadCfg, injection: Injection) -> Scenario {
    let violates = |candidate: &Scenario| {
        run_scenario(candidate, wl, injection, false)
            .violation
            .is_some()
    };
    let mut current = sc.clone();
    'outer: loop {
        for spec in current.faults.simplifications() {
            let candidate = Scenario {
                faults: spec,
                ..current.clone()
            };
            if violates(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// The sweep definition: the cartesian product of seeds, fault specs and
/// presets, all run under one workload shape.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
    /// Fault specs to sweep.
    pub fault_specs: Vec<FaultSpec>,
    /// Convergence presets to sweep.
    pub presets: Vec<Preset>,
    /// Workload shape.
    pub workload: WorkloadCfg,
}

impl SweepConfig {
    /// The standard pool of fault specs: clean, loss-only, duplication-only,
    /// outage mixes. Outage node indices follow the paper-default layout
    /// (two DCs × two KLSs + three FSs); all outages heal within the first
    /// two virtual minutes.
    pub fn fault_pool() -> Vec<FaultSpec> {
        let layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        };
        let fs = |dc, i| layout.fs(dc, i).index() as u32;
        let kls = |dc, i| layout.kls(dc, i).index() as u32;
        vec![
            FaultSpec::clean(),
            FaultSpec {
                drop_centi: 5,
                dup_centi: 0,
                outages: vec![],
            },
            FaultSpec {
                drop_centi: 0,
                dup_centi: 5,
                outages: vec![],
            },
            FaultSpec {
                drop_centi: 2,
                dup_centi: 2,
                outages: vec![Outage {
                    node: fs(1, 0),
                    start_secs: 0,
                    dur_secs: 60,
                }],
            },
            FaultSpec {
                drop_centi: 0,
                dup_centi: 0,
                outages: vec![
                    Outage {
                        node: kls(0, 0),
                        start_secs: 0,
                        dur_secs: 30,
                    },
                    Outage {
                        node: fs(0, 1),
                        start_secs: 10,
                        dur_secs: 60,
                    },
                ],
            },
            FaultSpec {
                drop_centi: 10,
                dup_centi: 5,
                outages: vec![Outage {
                    node: fs(1, 2),
                    start_secs: 0,
                    dur_secs: 120,
                }],
            },
        ]
    }

    /// The smoke sweep: 3 seeds × 3 fault specs × all 6 presets = 54
    /// scenarios.
    pub fn smoke() -> Self {
        SweepConfig {
            seeds: (0..3).collect(),
            fault_specs: SweepConfig::fault_pool().into_iter().take(3).collect(),
            presets: Preset::ALL.to_vec(),
            workload: WorkloadCfg::default(),
        }
    }

    /// The full sweep: 4 seeds × 6 fault specs × all 6 presets = 144
    /// scenarios.
    pub fn full() -> Self {
        SweepConfig {
            seeds: (0..4).collect(),
            fault_specs: SweepConfig::fault_pool(),
            presets: Preset::ALL.to_vec(),
            workload: WorkloadCfg::default(),
        }
    }

    /// The scenarios of this sweep, in deterministic order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &seed in &self.seeds {
            for spec in &self.fault_specs {
                for &preset in &self.presets {
                    out.push(Scenario {
                        seed,
                        faults: spec.clone(),
                        preset,
                    });
                }
            }
        }
        out
    }
}

/// A violating scenario, shrunk, with its evidence.
#[derive(Debug)]
pub struct ViolationReport {
    /// The scenario that first violated.
    pub original: Scenario,
    /// The shrunk minimal `(seed, faults, options)` triple.
    pub shrunk: Scenario,
    /// The violation observed on the **shrunk** scenario.
    pub violation: Violation,
    /// Rendered message trace of the shrunk run.
    pub trace: String,
}

/// The result of a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Scenarios completed (including the violating one, if any).
    pub scenarios_run: usize,
    /// Total simulation events processed — every one of them checked
    /// against every invariant.
    pub events_checked: u64,
    /// The first violation found, shrunk, or `None` if every invariant held
    /// everywhere.
    pub violation: Option<ViolationReport>,
}

/// Runs every scenario of `cfg`, stopping at (and shrinking) the first
/// invariant violation. `progress` is invoked after each scenario with the
/// scenario and its outcome.
pub fn sweep(
    cfg: &SweepConfig,
    injection: Injection,
    mut progress: impl FnMut(&Scenario, &ScenarioOutcome),
) -> SweepResult {
    let mut events_checked = 0u64;
    let mut scenarios_run = 0usize;
    for sc in cfg.scenarios() {
        let outcome = run_scenario(&sc, &cfg.workload, injection, false);
        scenarios_run += 1;
        events_checked += outcome.events;
        let violated = outcome.violation.is_some();
        progress(&sc, &outcome);
        if violated {
            let shrunk = shrink(&sc, &cfg.workload, injection);
            let shrunk_outcome = run_scenario(&shrunk, &cfg.workload, injection, true);
            let violation = shrunk_outcome
                .violation
                .expect("shrink preserves the violation");
            return SweepResult {
                scenarios_run,
                events_checked,
                violation: Some(ViolationReport {
                    original: sc,
                    shrunk,
                    violation,
                    trace: shrunk_outcome.trace.unwrap_or_default(),
                }),
            };
        }
    }
    SweepResult {
        scenarios_run,
        events_checked,
        violation: None,
    }
}

/// Like [`sweep`], but fans the scenarios out across `workers` scoped
/// threads via [`simnet::sweep::map_indexed`].
///
/// The result is **identical** to the sequential sweep: outcomes are
/// merged in scenario order, `progress` fires in scenario order, and the
/// walk stops at the first violating scenario *by that order* (later
/// scenarios may have been speculatively run by other workers, but their
/// outcomes are discarded exactly as if they had never run). Each
/// scenario run is a pure function of its recipe, so worker scheduling
/// cannot leak into any outcome.
pub fn sweep_parallel(
    cfg: &SweepConfig,
    injection: Injection,
    workers: usize,
    mut progress: impl FnMut(&Scenario, &ScenarioOutcome),
) -> SweepResult {
    let outcomes = simnet::sweep::map_indexed(cfg.scenarios(), workers, |_, sc| {
        let outcome = run_scenario(&sc, &cfg.workload, injection, false);
        (sc, outcome)
    });

    let mut events_checked = 0u64;
    let mut scenarios_run = 0usize;
    for (sc, outcome) in &outcomes {
        scenarios_run += 1;
        events_checked += outcome.events;
        progress(sc, outcome);
        if outcome.violation.is_some() {
            let shrunk = shrink(sc, &cfg.workload, injection);
            let shrunk_outcome = run_scenario(&shrunk, &cfg.workload, injection, true);
            let violation = shrunk_outcome
                .violation
                .expect("shrink preserves the violation");
            return SweepResult {
                scenarios_run,
                events_checked,
                violation: Some(ViolationReport {
                    original: sc.clone(),
                    shrunk,
                    violation,
                    trace: shrunk_outcome.trace.unwrap_or_default(),
                }),
            };
        }
    }
    SweepResult {
        scenarios_run,
        events_checked,
        violation: None,
    }
}

/// One line of the sweep's replay digest: every deterministic observable
/// of a scenario run, including a checksum of the full traffic-metrics
/// rendering. Byte-identical digests across the sequential and parallel
/// harnesses are what the CI determinism check compares.
pub fn digest_line(index: usize, sc: &Scenario, outcome: &ScenarioOutcome) -> String {
    format!(
        "{index:03} seed={} preset={} drop={} dup={} outages={} -> {:?} events={} t={}us metrics={:016x}",
        sc.seed,
        sc.preset.name(),
        sc.faults.drop_centi,
        sc.faults.dup_centi,
        sc.faults.outages.len(),
        outcome.outcome,
        outcome.events,
        outcome.sim_time.as_micros(),
        erasure::Checksum::of(outcome.metrics_digest.as_bytes()).as_u64(),
    )
}

// ---------------------------------------------------------------------------
// Sampled-invariant scale check (`explore --scale`)
// ---------------------------------------------------------------------------

/// Configuration for the scale-tier spot check: one Zipf streaming-workload
/// scenario run under [`ProtocolMode::scale`] (sharded stores, converged-
/// version compaction) with the full invariant registry installed at a
/// sampled rate.
#[derive(Debug, Clone)]
pub struct ScaleCheckCfg {
    /// RNG seed for both the cluster and the workload stream.
    pub seed: u64,
    /// Number of distinct keys the Zipf stream draws from.
    pub key_space: u64,
    /// Total puts issued by the streaming client.
    pub puts: u64,
    /// Blob size per put.
    pub value_len: usize,
    /// Per-event invariant checks run once every this many events
    /// (end-of-run checks always run).
    pub sample_every: u64,
}

impl ScaleCheckCfg {
    /// The CI smoke cell: small enough for the test gate, update-heavy
    /// enough (a Zipf stream over a small key space) that converged-
    /// version compaction provably fires.
    pub fn smoke() -> Self {
        ScaleCheckCfg {
            seed: 42,
            key_space: 200,
            puts: 600,
            value_len: 1024,
            sample_every: 500,
        }
    }
}

/// Outcome of [`run_scale_check`].
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events processed.
    pub events: u64,
    /// Virtual time at the end of the run.
    pub sim_time: SimTime,
    /// Total converged versions collapsed to residual records across all
    /// FSs — pinned in the digest line so a disabled compactor is a
    /// digest-visible mutation.
    pub compacted: u64,
    /// Full traffic-metrics rendering.
    pub metrics_digest: String,
}

/// Runs the scale-tier spot check. The cluster is pinned to
/// [`ProtocolMode::scale`] regardless of the process-wide switches, so the
/// check exercises sharding and compaction even when the surrounding sweep
/// runs another mode.
pub fn run_scale_check(cfg: &ScaleCheckCfg) -> ScaleOutcome {
    let mut cc = ClusterConfig::paper_default();
    cc.protocol = ProtocolMode::scale();
    cc.workload_value_len = cfg.value_len;
    cc.streaming_workload = Some(StreamingWorkload {
        puts: cfg.puts,
        key_space: cfg.key_space,
        value_len: cfg.value_len,
        policy: cc.policy,
        seed: cfg.seed,
        dist: KeyDistribution::Zipf { exponent: 1.1 },
        overwrite_delta_permille: 0,
    });
    let mut cluster = Cluster::build(cc, cfg.seed);
    let checker = Checker::install_sampled(
        &mut cluster,
        crate::invariants::registry(),
        cfg.sample_every,
    );
    let report = cluster.run_to_convergence();
    let violation = checker.finish(&cluster, report.outcome);
    let compacted = cluster
        .topology()
        .all_fss()
        .map(|fs| cluster.sim().actor::<Fs>(fs).compacted_count() as u64)
        .sum();
    let sim = cluster.sim();
    ScaleOutcome {
        violation,
        outcome: report.outcome,
        events: sim.events_processed(),
        sim_time: sim.now(),
        compacted,
        metrics_digest: format!("{:?}", sim.metrics()),
    }
}

/// The scale check's replay-digest line, appended after the sweep's
/// per-scenario lines when both `--scale` and `--digest-out` are given.
pub fn scale_digest_line(cfg: &ScaleCheckCfg, out: &ScaleOutcome) -> String {
    format!(
        "scale seed={} keys={} puts={} dist=zipf -> {:?} events={} t={}us compacted={} metrics={:016x}",
        cfg.seed,
        cfg.key_space,
        cfg.puts,
        out.outcome,
        out.events,
        out.sim_time.as_micros(),
        out.compacted,
        erasure::Checksum::of(out.metrics_digest.as_bytes()).as_u64(),
    )
}

// ---------------------------------------------------------------------------
// Multi-DC mesh check (`explore --mesh`)
// ---------------------------------------------------------------------------

/// Configuration for the mesh spot check: one clean scenario on a
/// **three**-data-center cluster. Every sweep scenario is paper-shaped
/// (two DCs), where each shard of the sharded engine receives cross-shard
/// traffic from exactly one peer — an inbox ordering that a stable
/// time-only sort can never disturb. Three DCs give every destination
/// shard two source shards, making the mailbox merge's
/// `(time, src-shard, seq)` tie-break observable: this check is what lets
/// the parallel-vs-sequential digest comparison kill the
/// `shard-merge-skip` mutant.
#[derive(Debug, Clone)]
pub struct MeshCheckCfg {
    /// RNG seed for cluster and workload.
    pub seed: u64,
    /// Standard-workload puts.
    pub puts: usize,
    /// Blob size per put.
    pub value_len: usize,
}

impl MeshCheckCfg {
    /// The CI smoke cell: small, clean-network, full invariant registry.
    pub fn smoke() -> Self {
        MeshCheckCfg {
            seed: 7,
            puts: 12,
            value_len: 2048,
        }
    }
}

/// Outcome of [`run_mesh_check`].
#[derive(Debug, Clone)]
pub struct MeshOutcome {
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events processed.
    pub events: u64,
    /// Virtual time at the end of the run.
    pub sim_time: SimTime,
    /// Full traffic-metrics rendering.
    pub metrics_digest: String,
}

/// Runs the mesh spot check on `engine`: a 3-DC cluster (two KLSs + four
/// FSs per DC, `(4, 12)` erasure spread one fragment per DC's FS set)
/// under the full invariant registry. The digest line deliberately omits
/// the engine label so sequential-sharded and parallel runs of the same
/// configuration can be compared byte for byte.
///
/// The network is constant-latency (every link exactly 25 ms) and lossy
/// (8% drops). Constant latency means cross-DC messages launched at the
/// same synchronized-round instant arrive at their destination shard at
/// the same microsecond, so the mailbox merge's `(time, src-shard, seq)`
/// tie-break is exercised on every anti-entropy round — with two or more
/// source shards per tie, which a 2-DC topology can never produce. The
/// losses force AMR sibling recovery, whose per-query replies make the
/// processing order of tied envelopes observable: each reply draws the
/// drop-model RNG at send time and lands in the trace in send order, so
/// a reordered merge shifts both the RNG stream and the trace, and the
/// digest (which folds in the full trace) moves.
pub fn run_mesh_check(cfg: &MeshCheckCfg, engine: EngineMode) -> MeshOutcome {
    let mut cc = ClusterConfig::paper_default();
    cc.engine = engine;
    cc.layout = ClusterLayout {
        dcs: 3,
        kls_per_dc: 2,
        fs_per_dc: 4,
    };
    cc.policy = pahoehoe::policy::Policy::new(4, 12, 3, 1);
    let mut network = NetworkConfig::with_drop_rate(0.08);
    network.latency_min = SimDuration::from_millis(25);
    network.latency_max = SimDuration::from_millis(25);
    cc.network = network;
    cc.workload_puts = cfg.puts;
    cc.workload_value_len = cfg.value_len;
    let mut cluster = Cluster::build(cc, cfg.seed);
    cluster.enable_trace();
    let checker = Checker::install_registry(&mut cluster);
    let report = cluster.run_to_convergence();
    let violation = checker.finish(&cluster, report.outcome);
    let sim = cluster.view();
    let trace = sim.trace().expect("tracing enabled above").render();
    MeshOutcome {
        violation,
        outcome: report.outcome,
        events: sim.events_processed(),
        sim_time: sim.now(),
        metrics_digest: format!("{:?}\n{trace}", sim.metrics()),
    }
}

/// The mesh check's replay-digest line, appended after the sweep's
/// per-scenario lines when both `--mesh` and `--digest-out` are given.
pub fn mesh_digest_line(cfg: &MeshCheckCfg, out: &MeshOutcome) -> String {
    format!(
        "mesh seed={} dcs=3 puts={} -> {:?} events={} t={}us metrics={:016x}",
        cfg.seed,
        cfg.puts,
        out.outcome,
        out.events,
        out.sim_time.as_micros(),
        erasure::Checksum::of(out.metrics_digest.as_bytes()).as_u64(),
    )
}

// ---------------------------------------------------------------------------
// Repair-engine churn check (`explore --repair`)
// ---------------------------------------------------------------------------

/// Configuration for the repair-engine spot check: four scenario families
/// (sustained disk churn, whole-rack outage, a flash crowd of reads during
/// rebuild, and a throttled repair storm), each on a rack-aware
/// paper-default cluster with one [`RepairActor`](pahoehoe::repair)
/// per DC. Always run on the legacy engine, so the digest is independent
/// of harness parallelism.
#[derive(Debug, Clone)]
pub struct RepairCheckCfg {
    /// Simulation seed shared by every family.
    pub seed: u64,
    /// Standard-workload puts per family.
    pub puts: usize,
    /// Blob size per put.
    pub value_len: usize,
    /// Per-event invariant sampling rate (small: repair runs are idle
    /// between drain ticks, and the redundancy-floor grace clock starts
    /// at the first *sampled* observation).
    pub sample_every: u64,
}

impl RepairCheckCfg {
    /// The CI smoke cell.
    pub fn smoke() -> Self {
        RepairCheckCfg {
            seed: 42,
            puts: 8,
            value_len: 4096,
            sample_every: 25,
        }
    }
}

/// What one repair scenario family observed.
#[derive(Debug, Clone)]
pub struct RepairFamilyOutcome {
    /// Family name (`churn`, `rack`, `flash`, `storm`).
    pub name: &'static str,
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// Events processed.
    pub events: u64,
    /// Virtual time at the end of the run.
    pub sim_time: SimTime,
    /// Minimum cluster-wide live-fragment count over the workload's
    /// acknowledged versions at end of run — `n` when the repair engine
    /// restored everything, lower when it left objects degraded.
    pub min_live: usize,
    /// Final values of the `EV_REPAIR_*` dense counters, by registry
    /// label. Events are invisible to the metrics debug rendering, so the
    /// digest folds these explicitly.
    pub counters: Vec<(&'static str, u64)>,
}

/// Outcome of [`run_repair_check`]: one entry per scenario family.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Per-family results, in run order.
    pub families: Vec<RepairFamilyOutcome>,
}

impl RepairOutcome {
    /// The first invariant violation across all families, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.families.iter().find_map(|f| f.violation.as_ref())
    }
}

/// The event counters folded into the repair digest.
const REPAIR_COUNTERS: [&str; 7] = [
    "repair_triggered",
    "repair_completed",
    "repair_abandoned",
    "repair_bytes",
    "repair_queue_depth",
    "repair_throttle_stalls",
    "degraded_reads",
];

/// The invariants a repair family runs under. Disk destruction is the
/// whole point of these scenarios, so the durability-monotonicity family
/// is out; the redundancy floor is the star.
fn repair_invariants() -> Vec<Box<dyn crate::invariants::Invariant>> {
    vec![
        Box::new(crate::invariants::RedundancyFloor::new()),
        Box::new(crate::invariants::MetricsSanity::new()),
        Box::new(crate::invariants::ChecksumIntegrity),
    ]
}

/// Builds one rack-aware, repair-enabled paper cluster, runs the standard
/// workload to convergence, and hands it to `faults` for the family's
/// destruction schedule. Returns the family outcome.
fn run_repair_family(
    name: &'static str,
    cfg: &RepairCheckCfg,
    opts: RepairOptions,
    faults: impl FnOnce(&mut Cluster),
) -> RepairFamilyOutcome {
    let mut cc = ClusterConfig::paper_default();
    cc.convergence.repair = Some(opts);
    cc.racks_per_dc = Some(3);
    cc.workload_puts = cfg.puts;
    cc.workload_value_len = cfg.value_len;
    let mut cluster = Cluster::build(cc, cfg.seed);
    let checker = Checker::install_sampled(&mut cluster, repair_invariants(), cfg.sample_every);
    let report = cluster.run_to_convergence();
    debug_assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);

    faults(&mut cluster);

    // Settle: give the engine its full grace window (and then some) to
    // re-protect whatever the last destruction window left degraded.
    let deadline = cluster.view().now() + SimDuration::from_secs(420);
    let outcome = cluster.run_until_time(deadline);
    let violation = checker.finish(&cluster, outcome);

    let acked: Vec<ObjectVersion> = cluster
        .client()
        .success_versions()
        .iter()
        .copied()
        .collect();
    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();
    let min_live = acked
        .iter()
        .map(|&ov| {
            let mut distinct = std::collections::BTreeSet::new();
            for &fs in &fss {
                if let Some(entry) = cluster.fs(fs).entry(ov) {
                    distinct.extend(entry.fragments.keys().copied());
                }
            }
            distinct.len()
        })
        .min()
        .unwrap_or(0);
    let sim = cluster.view();
    RepairFamilyOutcome {
        name,
        violation,
        events: sim.events_processed(),
        sim_time: sim.now(),
        min_live,
        counters: REPAIR_COUNTERS
            .iter()
            .map(|&label| (label, sim.metrics().event(label)))
            .collect(),
    }
}

/// Destroys the given disks of FS `(dc, i)` at the cluster's current
/// virtual time. Destruction is confined to DC 0 in every family, so the
/// remote DC always holds live donors and each object stays repairable.
fn destroy(cluster: &mut Cluster, i: usize, disks: &[u8]) {
    let victim = cluster.layout().fs(0, i);
    let now = cluster.view().now();
    for &disk in disks {
        cluster.actor_mut::<Fs>(victim).destroy_disk(disk, now);
    }
}

/// Runs all four repair scenario families.
pub fn run_repair_check(cfg: &RepairCheckCfg) -> RepairOutcome {
    let mut families = Vec::new();

    // Sustained node churn: one disk dies every other virtual minute,
    // rotating over DC 0's servers and disks. Damage accumulates until an
    // object crosses the threshold, then the engine must restore it
    // before the next window ends.
    families.push(run_repair_family(
        "churn",
        cfg,
        RepairOptions::paper_default(),
        |cluster| {
            for window in 0..6usize {
                destroy(cluster, window % 3, &[(window / 3) as u8]);
                let deadline = cluster.view().now() + SimDuration::from_secs(120);
                cluster.run_until_time(deadline);
            }
        },
    ));

    // Whole-rack outage: with three racks per DC, rack 0 of DC 0 is one
    // server; both its disks die at once, dropping every stripe to 4/6
    // live in that DC.
    families.push(run_repair_family(
        "rack",
        cfg,
        RepairOptions::paper_default(),
        |cluster| {
            destroy(cluster, 0, &[0, 1]);
        },
    ));

    // Flash crowd during rebuild: the same rack loss, immediately
    // followed by a burst of reads racing the reconstruction — the
    // degraded-read counter in the digest observes how many gets decoded
    // around the hole.
    let puts = cfg.puts;
    families.push(run_repair_family(
        "flash",
        cfg,
        RepairOptions::paper_default(),
        move |cluster| {
            destroy(cluster, 0, &[0, 1]);
            let client_id = cluster.layout().client();
            for burst in 0..3u64 {
                for i in 0..puts as u64 {
                    cluster
                        .actor_mut::<Client>(client_id)
                        .enqueue(ClientOp::Get {
                            key: Key::from_u64(i + 1),
                        });
                }
                cluster.schedule_timer(client_id, SimDuration::ZERO, 1);
                let deadline = cluster.view().now() + SimDuration::from_secs(10 + burst);
                cluster.run_until_time(deadline);
            }
        },
    ));

    // Repair storm under backpressure: two of DC 0's three servers lose
    // both disks, and the token bucket is sized well under one job's
    // cost, so the queue must drain over many throttle-stalled ticks —
    // still inside the grace window.
    families.push(run_repair_family(
        "storm",
        cfg,
        RepairOptions::throttled(2048),
        |cluster| {
            destroy(cluster, 0, &[0, 1]);
            destroy(cluster, 1, &[0, 1]);
        },
    ));

    RepairOutcome { families }
}

/// The repair check's replay digest: one line per family, folding the
/// repair event counters and the end-of-run redundancy floor. Counters
/// are folded explicitly because dense events are deliberately excluded
/// from the traffic-metrics debug rendering — without them a repair
/// engine that never triggers would be digest-invisible.
pub fn repair_digest_line(cfg: &RepairCheckCfg, family: &RepairFamilyOutcome) -> String {
    let counters: String = family
        .counters
        .iter()
        .map(|(label, v)| format!(" {label}={v}"))
        .collect();
    format!(
        "repair-{} seed={} puts={} -> {} events={} t={}us min_live={}{}",
        family.name,
        cfg.seed,
        cfg.puts,
        family.violation.as_ref().map_or("ok", |v| v.invariant),
        family.events,
        family.sim_time.as_micros(),
        family.min_live,
        counters,
    )
}
