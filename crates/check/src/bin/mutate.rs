//! Mutation-testing driver: `cargo run -p check --release --bin mutate`.
//!
//! Modes:
//!
//! * `--list` — scan the workspace and print every mutation site with its
//!   stable id (`operator:file-stem:occurrence`).
//! * `--smoke` — run the 14 pinned protocol mutants
//!   ([`check::mutate::PINNED_SMOKE`]) against the explorer smoke sweep
//!   (run in `--delta` mode so overwrites exercise the XOR-delta stripe
//!   path, plus the `--scale` spot check, whose digest line pins the
//!   compacted-version count, plus `--repair`, whose scenario families
//!   exercise the background repair engine under the redundancy-floor
//!   invariant, plus an engine-differential pass: the same smoke sweep
//!   under `--engine sharded` and `--engine parallel --workers 2`, whose
//!   digests must stay byte-identical) and gate on the kill-rate:
//!   **≥ 12 of 14** must be killed (invariant violation, digest
//!   mismatch, crash or timeout). Surviving mutants print their source
//!   diff. Exit 1 when the gate fails.
//! * `--id ID` (repeatable) — run specific mutants by id.
//!
//! `--bench-out PATH` additionally records `BENCH_analysis.json`: the
//! semantic analyzer's wall-time over the workspace plus per-mutant
//! build/sweep cost, so the CI gate's price is tracked like every other
//! bench. `--timeout SECS` bounds each build/sweep phase (default 600).

use std::path::PathBuf;
use std::process::ExitCode;
// lint:allow(wall-clock) — bench recording measures real analyzer time
use std::time::{Duration, Instant};

use check::{analysis, mutate};

/// Minimum pinned mutants that must be killed for `--smoke` to pass.
const SMOKE_KILL_GATE: usize = 12;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list = false;
    let mut smoke = false;
    let mut ids: Vec<String> = Vec::new();
    let mut bench_out: Option<PathBuf> = None;
    let mut timeout = Duration::from_secs(600);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--smoke" => smoke = true,
            "--id" => match args.next() {
                Some(id) => ids.push(id),
                None => return usage("--id needs a value"),
            },
            "--bench-out" => match args.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => return usage("--bench-out needs a path"),
            },
            "--timeout" => match args.next().and_then(|s| s.parse().ok()) {
                Some(secs) => timeout = Duration::from_secs(secs),
                None => return usage("--timeout needs seconds"),
            },
            "--help" | "-h" => return usage(""),
            path => root = PathBuf::from(path),
        }
    }

    let sites = match mutate::scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mutate: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list || (!smoke && ids.is_empty()) {
        println!("{} mutation site(s):", sites.len());
        for m in &sites {
            let pinned = if mutate::PINNED_SMOKE.contains(&m.id.as_str()) {
                " [pinned]"
            } else {
                ""
            };
            println!("{m}{pinned}");
        }
        return ExitCode::SUCCESS;
    }

    if smoke {
        ids = mutate::PINNED_SMOKE.iter().map(|s| s.to_string()).collect();
    }
    let mut selected = Vec::new();
    for id in &ids {
        match sites.iter().find(|m| &m.id == id) {
            Some(m) => selected.push(m.clone()),
            None => {
                eprintln!("mutate: unknown mutant id `{id}` (see --list)");
                return ExitCode::from(2);
            }
        }
    }

    // Time the semantic analyzer over the same workspace while we are
    // here — it is the other half of BENCH_analysis.json.
    // lint:allow(wall-clock) — bench recording measures real analyzer time
    let t0 = Instant::now();
    let (analyzer_files, analyzer_findings) = match analysis::Workspace::load(&root) {
        Ok(ws) => (ws.files.len(), analysis::analyze(&ws).len()),
        Err(_) => (0, 0),
    };
    let analyzer_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "analyzer: {analyzer_files} files, {analyzer_findings} finding(s), {analyzer_ms:.1} ms"
    );

    println!("preparing scratch tree + unmutated baseline sweep...");
    // `--scale` appends the scale check's digest line, which pins the
    // compacted-version count — the only observable that can kill the
    // compaction-skip mutant. `--delta` runs the sweep's workload for two
    // rounds under delta coding, so the overwrite path (and with it the
    // delta-resolve-skip mutant) is exercised under every invariant.
    // `--repair` runs the churn scenario families with the repair engine
    // on, appending digest lines that fold the EV_REPAIR_* counters — the
    // observables that kill repair-threshold-skip.
    let sweep_args = [
        "--scale".to_string(),
        "--delta".to_string(),
        "--repair".to_string(),
    ];
    let harness = match mutate::Harness::prepare(&root, &sweep_args, timeout) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mutate: baseline preparation failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "baseline: build {:.1}s, {} digest line(s)",
        harness.baseline_build_secs,
        harness.baseline_digest.lines().count()
    );

    let mut reports = Vec::new();
    for (i, m) in selected.iter().enumerate() {
        println!("[{}/{}] {m}", i + 1, selected.len());
        match harness.run_mutant(m) {
            Ok(r) => {
                println!(
                    "        -> {} (build {:.1}s, sweep {:.1}s)",
                    r.outcome.label(),
                    r.build_secs,
                    r.sweep_secs
                );
                if let mutate::Outcome::KilledInvariant(line) = &r.outcome {
                    println!("        {line}");
                }
                reports.push(r);
            }
            Err(e) => {
                eprintln!("mutate: running {} failed: {e}", m.id);
                return ExitCode::from(2);
            }
        }
    }

    let killed = reports.iter().filter(|r| r.outcome.killed()).count();
    println!("\nkill-rate: {killed}/{} mutants killed", reports.len());
    let survivors: Vec<&mutate::MutantReport> = reports
        .iter()
        .filter(|r| r.outcome == mutate::Outcome::Survived)
        .collect();
    if !survivors.is_empty() {
        println!("surviving mutants (invariant gaps):");
        for r in &survivors {
            let src = std::fs::read_to_string(root.join(&r.mutation.file)).unwrap_or_default();
            println!(
                "  {} at {}:{}\n{}",
                r.mutation.id,
                r.mutation.file.display(),
                r.mutation.line,
                indent(&r.mutation.diff(&src))
            );
        }
    }

    if let Some(path) = bench_out {
        if let Err(e) = mutate::write_bench(
            &path,
            analyzer_ms,
            analyzer_files,
            &reports,
            harness.baseline_build_secs,
        ) {
            eprintln!("mutate: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("bench record written to {}", path.display());
    }

    if smoke && killed < SMOKE_KILL_GATE {
        eprintln!(
            "mutate: kill-rate gate FAILED ({killed}/{} < {SMOKE_KILL_GATE})",
            reports.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mutate: {err}");
    }
    eprintln!(
        "usage: mutate [ROOT] [--list] [--smoke] [--id ID]... [--bench-out PATH] [--timeout SECS]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
