//! Invariant-sweep driver: `cargo run --release -p check --bin explore`.
//!
//! Runs the full protocol-invariant registry after every event of every
//! `(seed, fault plan, convergence preset)` scenario. Exits 0 when every
//! invariant held everywhere; on a violation, prints the shrunk minimal
//! repro triple, dumps the violating run's message trace to a file and
//! exits 1.
//!
//! Flags:
//!
//! * `--smoke` — the 54-scenario smoke sweep (default is the 144-scenario
//!   full sweep);
//! * `--seeds N` — override the number of seeds swept;
//! * `--puts N`, `--value-len N` — workload shape;
//! * `--inject-corruption` — deliberately corrupt a stored fragment after
//!   convergence in every scenario, to prove the checker catches it;
//! * `--trace-out PATH` — where to write the violation trace (default
//!   `target/check-violation.trace`);
//! * `--workers N` — with the legacy engine, run the sweep through the
//!   deterministic parallel harness with `N` worker threads (default: the
//!   sequential sweep; the two produce byte-identical digests). With
//!   `--engine parallel`, the worker threads drive each scenario's
//!   sharded engine instead and scenarios run one at a time;
//! * `--engine legacy|sharded|parallel` — which simulation engine every
//!   scenario runs on. `legacy` (default) is the single-threaded engine,
//!   byte-identical to all recorded digests. `sharded` is the DC-sharded
//!   conservative engine executed sequentially; `parallel` is the same
//!   engine on `--workers` threads (min 2). Sharded digests differ from
//!   legacy (per-shard RNG streams) but `sharded` and `parallel` at any
//!   worker count are byte-identical — the CI determinism check;
//! * `--digest-out PATH` — write one replay-digest line per scenario, for
//!   comparing sequential and parallel runs byte for byte;
//! * `--protocol reference|optimized|batched` — pin the protocol hot-path
//!   mode (shared metadata / coalesced round accounting) the sweep's
//!   clusters run with. `reference` and `optimized` produce byte-identical
//!   digests (the optimizations are representation changes only);
//!   `batched` changes the traffic accounting, so its digests differ but
//!   every invariant must still hold. Default: the process default
//!   (optimized, unbatched);
//! * `--delta` — switch the delta-aware multiversion codec on and run the
//!   standard workload for **two rounds**, so every second-round put
//!   overwrites a key and exercises the XOR-delta stripe path. Delta mode
//!   changes the message flow (delta puts skip location decision), so its
//!   digests differ from the default sweep's, but every invariant must
//!   hold and the sequential and parallel digests must still match;
//! * `--scale` — after the sweep, run the scale-tier spot check: one Zipf
//!   streaming-workload scenario pinned to the scale protocol mode
//!   (sharded stores + converged-version compaction) with the invariant
//!   registry installed at a sampled rate. Its digest line — which pins
//!   the compacted-version count — is appended to `--digest-out`;
//! * `--mesh` — after the sweep, run the mesh spot check: one clean
//!   scenario on a three-DC cluster under the configured engine. Three
//!   DCs give every shard two cross-shard peers, so the sharded engine's
//!   `(time, src-shard, seq)` mailbox tie-break is observable (the
//!   paper-shaped sweep scenarios, with one peer per shard, cannot see
//!   it). Its digest line is appended to `--digest-out`;
//! * `--repair` — after the sweep, run the repair-engine churn check:
//!   four scenario families (sustained disk churn, whole-rack outage,
//!   flash-crowd reads during rebuild, throttled repair storm) on
//!   rack-aware repair-enabled clusters, under the redundancy-floor
//!   invariant. One digest line per family — folding the `EV_REPAIR_*`
//!   counters and the final redundancy floor — is appended to
//!   `--digest-out`. Always runs on the legacy engine, so the digest is
//!   independent of harness parallelism;
//! * `--quiet` — suppress per-scenario progress lines.

use std::path::PathBuf;
use std::process::ExitCode;

use check::explorer::{self, Injection, SweepConfig};

fn usage() -> ! {
    eprintln!(
        "usage: explore [--smoke] [--seeds N] [--puts N] [--value-len N] \
         [--inject-corruption] [--trace-out PATH] [--workers N] \
         [--engine legacy|sharded|parallel] [--digest-out PATH] \
         [--protocol reference|optimized|batched] [--delta] [--scale] \
         [--mesh] [--repair] [--quiet]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = SweepConfig::full();
    let mut injection = Injection::None;
    let mut trace_out = PathBuf::from("target/check-violation.trace");
    let mut digest_out: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut engine: Option<String> = None;
    let mut scale = false;
    let mut mesh = false;
    let mut repair = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--smoke" => {
                let workload = cfg.workload;
                cfg = SweepConfig::smoke();
                cfg.workload = workload;
            }
            "--seeds" => cfg.seeds = (0..num(&mut args) as u64).collect(),
            "--puts" => cfg.workload.puts = num(&mut args),
            "--value-len" => cfg.workload.value_len = num(&mut args),
            "--inject-corruption" => injection = Injection::CorruptFragment,
            "--trace-out" => trace_out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--workers" => workers = Some(num(&mut args)),
            "--engine" => engine = Some(args.next().unwrap_or_else(|| usage())),
            "--digest-out" => {
                digest_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--protocol" => match args.next().as_deref() {
                Some("reference") => {
                    pahoehoe::protocol::set_reference_protocol_mode(true);
                    pahoehoe::protocol::set_batched_rounds(false);
                }
                Some("optimized") => {
                    pahoehoe::protocol::set_reference_protocol_mode(false);
                    pahoehoe::protocol::set_batched_rounds(false);
                }
                Some("batched") => {
                    pahoehoe::protocol::set_reference_protocol_mode(false);
                    pahoehoe::protocol::set_batched_rounds(true);
                }
                _ => usage(),
            },
            "--delta" => {
                pahoehoe::protocol::set_delta_coding(true);
                cfg.workload.rounds = 2;
            }
            "--scale" => scale = true,
            "--mesh" => mesh = true,
            "--repair" => repair = true,
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }

    // `--workers` steers the scenario fan-out on the legacy engine; on the
    // sharded engines it sizes each scenario's worker pool instead (the
    // scenarios then run one at a time, so thread counts compose sanely).
    match engine.as_deref() {
        None | Some("legacy") => {}
        Some(mode) => {
            let mode = pahoehoe::cluster::EngineMode::parse(mode, workers.unwrap_or(2))
                .unwrap_or_else(|| usage());
            cfg.workload.engine = mode;
            workers = None;
        }
    }

    let total = cfg.scenarios().len();
    println!(
        "exploring {total} scenarios ({} seeds x {} fault specs x {} presets), \
         {} puts of {} B each, engine={} workers={}",
        cfg.seeds.len(),
        cfg.fault_specs.len(),
        cfg.presets.len(),
        cfg.workload.puts,
        cfg.workload.value_len,
        cfg.workload.engine.label(),
        cfg.workload.engine.workers(),
    );

    let mut n = 0usize;
    let mut digest = String::new();
    let mut on_scenario = |sc: &explorer::Scenario, outcome: &explorer::ScenarioOutcome| {
        if digest_out.is_some() {
            digest.push_str(&explorer::digest_line(n, sc, outcome));
            digest.push('\n');
        }
        n += 1;
        if !quiet {
            println!(
                "[{n:>3}/{total}] seed={} preset={:<7} drop={}% dup={}% outages={} -> \
                 {:?}, {} events, {:.0}s virtual{}",
                sc.seed,
                sc.preset.name(),
                sc.faults.drop_centi,
                sc.faults.dup_centi,
                sc.faults.outages.len(),
                outcome.outcome,
                outcome.events,
                outcome.sim_time.as_secs_f64(),
                if outcome.violation.is_some() {
                    "  ** VIOLATION **"
                } else {
                    ""
                },
            );
        }
    };
    let result = match workers {
        Some(w) => explorer::sweep_parallel(&cfg, injection, w, &mut on_scenario),
        None => explorer::sweep(&cfg, injection, &mut on_scenario),
    };

    let mut scale_violation = None;
    if scale {
        let scale_cfg = explorer::ScaleCheckCfg::smoke();
        let out = explorer::run_scale_check(&scale_cfg);
        if !quiet {
            println!(
                "[scale] seed={} keys={} puts={} -> {:?}, {} events, {} compacted{}",
                scale_cfg.seed,
                scale_cfg.key_space,
                scale_cfg.puts,
                out.outcome,
                out.events,
                out.compacted,
                if out.violation.is_some() {
                    "  ** VIOLATION **"
                } else {
                    ""
                },
            );
        }
        if digest_out.is_some() {
            digest.push_str(&explorer::scale_digest_line(&scale_cfg, &out));
            digest.push('\n');
        }
        scale_violation = out.violation;
    }

    let mut mesh_violation = None;
    if mesh {
        let mesh_cfg = explorer::MeshCheckCfg::smoke();
        let out = explorer::run_mesh_check(&mesh_cfg, cfg.workload.engine);
        if !quiet {
            println!(
                "[mesh] seed={} dcs=3 puts={} engine={} -> {:?}, {} events{}",
                mesh_cfg.seed,
                mesh_cfg.puts,
                cfg.workload.engine.label(),
                out.outcome,
                out.events,
                if out.violation.is_some() {
                    "  ** VIOLATION **"
                } else {
                    ""
                },
            );
        }
        if digest_out.is_some() {
            digest.push_str(&explorer::mesh_digest_line(&mesh_cfg, &out));
            digest.push('\n');
        }
        mesh_violation = out.violation;
    }

    let mut repair_violation = None;
    if repair {
        let repair_cfg = explorer::RepairCheckCfg::smoke();
        let out = explorer::run_repair_check(&repair_cfg);
        for family in &out.families {
            if !quiet {
                println!(
                    "[repair-{}] seed={} puts={} -> {} events, min_live={}{}",
                    family.name,
                    repair_cfg.seed,
                    repair_cfg.puts,
                    family.events,
                    family.min_live,
                    if family.violation.is_some() {
                        "  ** VIOLATION **"
                    } else {
                        ""
                    },
                );
            }
            if digest_out.is_some() {
                digest.push_str(&explorer::repair_digest_line(&repair_cfg, family));
                digest.push('\n');
            }
        }
        repair_violation = out.violation().cloned();
    }

    if let Some(path) = &digest_out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, &digest) {
            eprintln!("failed to write digest {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "digest: {} lines written to {}",
            digest.lines().count(),
            path.display()
        );
    }

    if let Some(v) = scale_violation {
        println!();
        println!(
            "INVARIANT VIOLATED in scale check: {} — {}",
            v.invariant, v.detail
        );
        println!(
            "  at event {} / {:.3}s virtual",
            v.events_processed,
            v.sim_time.as_secs_f64()
        );
        return ExitCode::FAILURE;
    }

    if let Some(v) = mesh_violation {
        println!();
        println!(
            "INVARIANT VIOLATED in mesh check: {} — {}",
            v.invariant, v.detail
        );
        println!(
            "  at event {} / {:.3}s virtual",
            v.events_processed,
            v.sim_time.as_secs_f64()
        );
        return ExitCode::FAILURE;
    }

    if let Some(v) = repair_violation {
        println!();
        println!(
            "INVARIANT VIOLATED in repair check: {} — {}",
            v.invariant, v.detail
        );
        println!(
            "  at event {} / {:.3}s virtual",
            v.events_processed,
            v.sim_time.as_secs_f64()
        );
        return ExitCode::FAILURE;
    }

    match result.violation {
        None => {
            println!(
                "ok: {} scenarios, {} events checked against all {} invariants",
                result.scenarios_run,
                result.events_checked,
                check::invariants::registry().len()
            );
            ExitCode::SUCCESS
        }
        Some(report) => {
            println!();
            println!(
                "INVARIANT VIOLATED: {} — {}",
                report.violation.invariant, report.violation.detail
            );
            println!(
                "  at event {} / {:.3}s virtual",
                report.violation.events_processed,
                report.violation.sim_time.as_secs_f64()
            );
            println!("  first seen:   {:?}", report.original);
            println!("  shrunk repro: {:?}", report.shrunk);
            if let Some(dir) = trace_out.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&trace_out, &report.trace) {
                Ok(()) => println!(
                    "  trace: {} events dumped to {}",
                    report.trace.lines().count(),
                    trace_out.display()
                ),
                Err(e) => println!("  trace: failed to write {}: {e}", trace_out.display()),
            }
            ExitCode::FAILURE
        }
    }
}
