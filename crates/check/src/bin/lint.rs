//! Determinism lint driver: `cargo run -p check --bin lint`.
//!
//! Scans every `crates/*/src/**/*.rs` under the workspace root (default:
//! the current directory; pass a path to override) for constructs that
//! break seeded-simulation determinism. `--rules` lists the rule set;
//! `--format json` emits one JSON array of findings for CI consumption.
//!
//! # Exit codes
//!
//! Stable, so CI can gate on *which* rules fired, not just that some did:
//!
//! * `0` — clean
//! * `2` — scan error (unreadable root)
//! * `100 + bitmask` — findings; bit *i* set when rule *i* (in `--rules`
//!   order) fired. E.g. `101` = only `hash-collections`, `132` = only
//!   `hot-path-alloc` (bit 5), `164` = only `shared-mutable` (bit 6).

use std::path::PathBuf;
use std::process::ExitCode;

use check::lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                for (i, (name, what)) in lint::RULES.iter().enumerate() {
                    println!("{i} {name:<18} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("lint: unknown format {other:?} (want json|text)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: lint [WORKSPACE_ROOT] [--rules] [--format json|text]");
                return ExitCode::SUCCESS;
            }
            path => root = PathBuf::from(path),
        }
    }

    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        let objects: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        println!("[{}]", objects.join(","));
    } else if findings.is_empty() {
        println!("lint: clean ({} rules)", lint::RULES.len());
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    let mut mask = 0u8;
    for f in &findings {
        if let Some(bit) = lint::rule_bit(f.rule) {
            mask |= 1 << bit;
        }
    }
    ExitCode::from(100 + mask)
}
