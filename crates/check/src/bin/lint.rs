//! Determinism lint driver: `cargo run -p check --bin lint`.
//!
//! Scans every `crates/*/src/**/*.rs` under the workspace root (default:
//! the current directory; pass a path to override) for constructs that
//! break seeded-simulation determinism. Exits 0 when clean, 1 with one
//! line per finding otherwise. `--rules` lists the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

use check::lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--rules" => {
                for (name, what) in lint::RULES {
                    println!("{name:<18} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: lint [WORKSPACE_ROOT] [--rules]");
                return ExitCode::SUCCESS;
            }
            path => root = PathBuf::from(path),
        }
    }

    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        println!("lint: clean ({} rules)", lint::RULES.len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
