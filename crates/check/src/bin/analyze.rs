//! Semantic analyzer driver: `cargo run -p check --release --bin analyze`.
//!
//! Runs the five workspace-wide semantic rules of [`check::analysis`]
//! (exhaustive-dispatch, mode-parity, panic-path, unsafe-confinement,
//! registry-sync) over `crates/*/{src,tests}` under the workspace root
//! (default: the current directory; pass a path to override). `--rules`
//! lists the rule set; `--format json` emits one JSON array of findings.
//!
//! # Exit codes
//!
//! Stable, so CI can gate on *which* rules fired:
//!
//! * `0` — clean
//! * `2` — scan error (unreadable root)
//! * `100 + bitmask` — findings; bit *i* set when rule *i* (in `--rules`
//!   order) fired. E.g. `104` = only `panic-path` (bit 2).

use std::path::PathBuf;
use std::process::ExitCode;

use check::analysis;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                for (i, (name, what)) in analysis::RULES.iter().enumerate() {
                    println!("{i} {name:<20} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("analyze: unknown format {other:?} (want json|text)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: analyze [WORKSPACE_ROOT] [--rules] [--format json|text]");
                return ExitCode::SUCCESS;
            }
            path => root = PathBuf::from(path),
        }
    }

    let findings = match analysis::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyze: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        let objects: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        println!("[{}]", objects.join(","));
    } else if findings.is_empty() {
        println!("analyze: clean ({} rules)", analysis::RULES.len());
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("analyze: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    let mut mask = 0u8;
    for f in &findings {
        if let Some(bit) = analysis::rule_bit(f.rule) {
            mask |= 1 << bit;
        }
    }
    ExitCode::from(100 + mask)
}
