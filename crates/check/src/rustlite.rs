//! A from-scratch, dependency-free Rust source front-end, shared by the
//! token-level determinism [`lint`](crate::lint) and the semantic
//! [`analysis`](crate::analysis) pass.
//!
//! Three layers, each just deep enough to be trustworthy:
//!
//! 1. **Lexing** — [`strip_noncode`] blanks comments, (raw) string
//!    literals and char literals (newlines preserved, so positions stay
//!    valid in the original source); [`tokenize`] then yields
//!    line/column-spanned identifier and punctuation tokens.
//! 2. **Item model** — [`FileModel::parse`] walks the token stream into a
//!    flat list of `fn` items with brace-matched body ranges, records
//!    `#[cfg(test)] mod` regions (so rules can skip deliberate test-only
//!    hazards), and parses `match` expressions into scrutinee + arm
//!    pattern ranges.
//! 3. **Call graph** — [`FileModel::reachable_from`] computes the
//!    intra-file transitive closure of `name(`-style calls from a set of
//!    root functions. Resolution is by bare name within one file, which
//!    is exactly the one-level precision the workspace rules need: each
//!    actor lives in its own file and its protocol helpers are local.
//!
//! The model is deliberately *not* a full parser: generics, lifetimes and
//! attributes flow through as plain tokens, and everything downstream is
//! written to degrade safely (a construct the model cannot see produces
//! no finding, never a panic — the robustness proptest in
//! `tests/analysis_fixtures.rs` feeds it mutilated sources).

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

/// Replaces comments, string literals and char literals with spaces
/// (newlines preserved), so token scans only ever see code. Handles
/// nested block comments, raw strings with arbitrary `#` counts, byte
/// strings, escapes, and the char-literal/lifetime ambiguity.
pub fn strip_noncode(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = chars.len();

    // Appends `c` as-is if it's a newline (line structure must survive),
    // else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                blank(&mut out, chars[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
        let raw_start = if c == 'r' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '#') {
            Some(i + 1)
        } else if c == 'b'
            && i + 2 < n
            && chars[i + 1] == 'r'
            && (chars[i + 2] == '"' || chars[i + 2] == '#')
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                // Blank from `i` through the closing quote+hashes.
                j += 1; // past the opening quote
                loop {
                    if j >= n {
                        break;
                    }
                    if chars[j] == '"'
                        && chars[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                for &ch in &chars[i..j.min(n)] {
                    blank(&mut out, ch);
                }
                i = j;
                continue;
            }
            // `r` not followed by a string: fall through as a normal ident.
        }
        // Plain (byte) string.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            if c == 'b' {
                blank(&mut out, c);
                i += 1;
            }
            blank(&mut out, chars[i]); // opening quote
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                blank(&mut out, chars[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: a char literal closes with `'` within a
        // couple of chars; a lifetime never does.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 2] == '\''
            };
            if is_char_lit {
                blank(&mut out, chars[i]); // opening quote
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        blank(&mut out, chars[i]);
                        blank(&mut out, chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    let done = chars[i] == '\'';
                    blank(&mut out, chars[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
                continue;
            }
            // Lifetime: keep the quote as code (token scans use it to skip
            // lifetime parameters).
        }
        out.push(c);
        i += 1;
    }
    out
}

/// One lexed token: an identifier-ish word or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier, keyword or number (alphanumeric + `_` run).
    Ident(String),
    /// Any other non-whitespace character.
    Punct(char),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Lexes stripped code (see [`strip_noncode`]) into spanned tokens.
pub fn tokenize(code: &str) -> Vec<Spanned> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            chars.next();
            col += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let (start_line, start_col) = (line, col);
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    ident.push(c);
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(ident),
                line: start_line,
                col: start_col,
            });
            continue;
        }
        out.push(Spanned {
            tok: Tok::Punct(c),
            line,
            col,
        });
        chars.next();
        col += 1;
    }
    out
}

/// The identifier text of token `i`, if it is one.
pub fn ident(toks: &[Spanned], i: usize) -> Option<&str> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

/// The punctuation char of token `i`, if it is one.
pub fn punct(toks: &[Spanned], i: usize) -> Option<char> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Whether token `i` is directly preceded by `prefix ::`.
pub fn preceded_by(toks: &[Spanned], i: usize, prefix: &str) -> bool {
    i >= 3
        && punct(toks, i - 1) == Some(':')
        && punct(toks, i - 2) == Some(':')
        && ident(toks, i - 3) == Some(prefix)
}

/// Given the index of an opening `{`, returns the exclusive end index one
/// past its matching `}` (or `toks.len()` if unbalanced).
pub fn brace_range(toks: &[Spanned], open: usize) -> usize {
    delim_range(toks, open, '{', '}')
}

/// Given the index of an opening `[`, returns the exclusive end index one
/// past its matching `]` (or `toks.len()` if unbalanced).
pub fn bracket_range(toks: &[Spanned], open: usize) -> usize {
    delim_range(toks, open, '[', ']')
}

fn delim_range(toks: &[Spanned], open: usize, lo: char, hi: char) -> usize {
    let mut depth = 0usize;
    for j in open..toks.len() {
        match punct(toks, j) {
            Some(c) if c == lo => depth += 1,
            Some(c) if c == hi => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token range `[open, end)` of the body including braces; `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// One arm of a parsed `match`.
#[derive(Debug, Clone)]
pub struct ArmModel {
    /// Token range `[start, end)` of the pattern (before any `if` guard).
    pub pat: (usize, usize),
    /// Token range `[start, end)` of the arm body.
    pub body: (usize, usize),
}

/// One parsed `match` expression.
#[derive(Debug, Clone)]
pub struct MatchModel {
    /// Token index of the `match` keyword.
    pub kw: usize,
    /// Token range `[start, end)` of the scrutinee expression.
    pub scrutinee: (usize, usize),
    /// The arms, in source order.
    pub arms: Vec<ArmModel>,
}

/// A parsed source file: tokens plus the item model layered over them.
#[derive(Debug)]
pub struct FileModel {
    /// The spanned tokens of the stripped source.
    pub toks: Vec<Spanned>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnModel>,
    /// Token ranges of `#[cfg(test)] mod … { }` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// Parses `src` (raw file text) into the model.
    pub fn parse(src: &str) -> FileModel {
        let code = strip_noncode(src);
        let toks = tokenize(&code);
        let test_ranges = find_test_ranges(&toks);
        let in_test = |i: usize| test_ranges.iter().any(|&(s, e)| i >= s && i < e);
        let mut fns = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if ident(&toks, i) == Some("fn") {
                if let Some(name) = ident(&toks, i + 1) {
                    let body = fn_body_range(&toks, i);
                    fns.push(FnModel {
                        name: name.to_string(),
                        kw: i,
                        body,
                        line: toks[i].line,
                        in_test: in_test(i),
                    });
                }
            }
            i += 1;
        }
        FileModel {
            toks,
            fns,
            test_ranges,
        }
    }

    /// The first non-test `fn` with this name, if any.
    pub fn fn_named(&self, name: &str) -> Option<&FnModel> {
        self.fns.iter().find(|f| f.name == name && !f.in_test)
    }

    /// Names called as `name(` within the token range (methods and free
    /// functions alike; `Type::assoc(` yields `assoc`).
    pub fn calls_in(&self, range: (usize, usize)) -> Vec<String> {
        let mut out = Vec::new();
        for i in range.0..range.1.min(self.toks.len()) {
            if let Some(name) = ident(&self.toks, i) {
                if punct(&self.toks, i + 1) == Some('(')
                    && ident(&self.toks, i.wrapping_sub(1)) != Some("fn")
                {
                    out.push(name.to_string());
                }
            }
        }
        out
    }

    /// Indices into [`fns`](FileModel::fns) of every non-test function
    /// reachable from the named roots via the intra-file call graph
    /// (transitive closure; roots included when they exist).
    pub fn reachable_from(&self, roots: &[&str]) -> Vec<usize> {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in self.fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(f.name.as_str()).or_default().push(idx);
            }
        }
        let mut seen = vec![false; self.fns.len()];
        let mut work: Vec<usize> = roots
            .iter()
            .filter_map(|r| by_name.get(*r))
            .flatten()
            .copied()
            .collect();
        let mut out = Vec::new();
        while let Some(idx) = work.pop() {
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            out.push(idx);
            if let Some(body) = self.fns[idx].body {
                for callee in self.calls_in(body) {
                    if let Some(targets) = by_name.get(callee.as_str()) {
                        work.extend(targets.iter().copied());
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Every `match` expression within the token range.
    pub fn matches_in(&self, range: (usize, usize)) -> Vec<MatchModel> {
        let mut out = Vec::new();
        for i in range.0..range.1.min(self.toks.len()) {
            if ident(&self.toks, i) == Some("match") {
                if let Some(m) = parse_match(&self.toks, i) {
                    out.push(m);
                }
            }
        }
        out
    }
}

/// Body range of the `fn` whose keyword is at `kw`: the first `{` at
/// paren-depth 0 after the signature, brace-matched. A `;` first means a
/// bodyless declaration.
fn fn_body_range(toks: &[Spanned], kw: usize) -> Option<(usize, usize)> {
    let mut depth = 0isize;
    for j in kw + 1..toks.len() {
        match punct(toks, j) {
            Some('(') => depth += 1,
            Some(')') => depth -= 1,
            Some(';') if depth == 0 => return None,
            Some('{') if depth == 0 => return Some((j, brace_range(toks, j))),
            _ => {}
        }
    }
    None
}

/// Token ranges of `mod` bodies directly preceded by a `#[cfg(test)]`
/// attribute.
fn find_test_ranges(toks: &[Spanned]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ident(toks, i) != Some("mod") {
            continue;
        }
        // Walk back over `#[cfg(test)]`-ish attribute tokens.
        let has_cfg_test = i >= 6
            && punct(toks, i - 1) == Some(']')
            && ident(toks, i - 3) == Some("test")
            && ident(toks, i - 5) == Some("cfg")
            && punct(toks, i - 6) == Some('[');
        if !has_cfg_test {
            continue;
        }
        // mod NAME {
        if let Some('{') = punct(toks, i + 2) {
            out.push((i + 2, brace_range(toks, i + 2)));
        }
    }
    out
}

/// Parses the `match` whose keyword is at `kw` into scrutinee and arms.
fn parse_match(toks: &[Spanned], kw: usize) -> Option<MatchModel> {
    // Scrutinee: tokens until the `{` at depth 0 (parens/brackets tracked;
    // a struct literal in a scrutinee needs parens in Rust, so the first
    // depth-0 `{` is the match body).
    let mut depth = 0isize;
    let mut open = None;
    for j in kw + 1..toks.len() {
        match punct(toks, j) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
    }
    let open = open?;
    let end = brace_range(toks, open);
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < end - 1 {
        // Pattern: until `=>` at depth 0 relative to the arm.
        let pat_start = i;
        let mut depth = 0isize;
        let mut guard_kw: Option<usize> = None;
        let mut arrow = None;
        let mut j = i;
        while j < end - 1 {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct('=') if depth == 0 && punct(toks, j + 1) == Some('>') => {
                    arrow = Some(j);
                    break;
                }
                Tok::Ident(id) if depth == 0 && id == "if" && guard_kw.is_none() => {
                    guard_kw = Some(j);
                }
                _ => {}
            }
            j += 1;
        }
        let arrow = arrow?;
        let pat_end = guard_kw.unwrap_or(arrow);
        // Body: a brace block, or an expression until `,` at depth 0.
        let body_start = arrow + 2;
        let body_end = if punct(toks, body_start) == Some('{') {
            brace_range(toks, body_start)
        } else {
            let mut depth = 0isize;
            let mut k = body_start;
            while k < end - 1 {
                match punct(toks, k) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            k
        };
        arms.push(ArmModel {
            pat: (pat_start, pat_end),
            body: (body_start, body_end),
        });
        // Skip the optional separating comma.
        i = if punct(toks, body_end) == Some(',') {
            body_end + 1
        } else {
            body_end
        };
        if i <= pat_start {
            break; // no progress on mutilated input; bail out safely
        }
    }
    Some(MatchModel {
        kw,
        scrutinee: (kw + 1, open),
        arms,
    })
}

// ---------------------------------------------------------------------------
// `lint:allow` suppression (shared by lint and analysis)
// ---------------------------------------------------------------------------

/// One `lint:allow(rule)` marker occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parens.
    pub rule: String,
    /// Trailing text after the closing paren, trimmed of `: - —`
    /// separators — the justification, when the site carries one.
    pub justification: String,
}

/// Markers per line: `line -> allows` parsed from `lint:allow(rule,
/// rule): why` markers anywhere on the line (they live in comments, so
/// the *raw* source is searched).
pub fn allows_by_line(src: &str) -> BTreeMap<usize, Vec<Allow>> {
    let mut out: BTreeMap<usize, Vec<Allow>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let justification = rest[close + 1..]
                .trim_start_matches([':', '-', '—', ' '])
                .trim()
                .to_string();
            let allows = out.entry(idx + 1).or_default();
            for rule in rest[..close].split(',') {
                allows.push(Allow {
                    rule: rule.trim().to_string(),
                    justification: justification.clone(),
                });
            }
            rest = &rest[close + 1..];
        }
    }
    out
}

/// Whether a finding of `rule` on 1-based `line` is suppressed: a marker
/// on the same line, on the preceding line, or on the line above any run
/// of attribute lines (`#[…]` / `#![…]`) directly preceding the finding —
/// so an allow can sit above `#[derive(...)]` and still cover the item.
pub fn allowed(
    allows: &BTreeMap<usize, Vec<Allow>>,
    lines: &[&str],
    line: usize,
    rule: &str,
) -> bool {
    find_allow(allows, lines, line, rule).is_some()
}

/// Like [`allowed`], but returns the matching marker so callers can
/// inspect its justification (the `panic-path` rule requires one).
pub fn find_allow<'a>(
    allows: &'a BTreeMap<usize, Vec<Allow>>,
    lines: &[&str],
    line: usize,
    rule: &str,
) -> Option<&'a Allow> {
    let hit = |l: usize| {
        allows
            .get(&l)
            .and_then(|v| v.iter().find(|a| a.rule == rule))
    };
    if let Some(a) = hit(line) {
        return Some(a);
    }
    // Walk upward over attribute-only lines; the first non-attribute line
    // above the finding is the only other place a marker counts.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if let Some(a) = hit(l) {
            return Some(a);
        }
        let text = lines.get(l - 1).map(|s| s.trim()).unwrap_or("");
        let is_attr = text.starts_with("#[") || text.starts_with("#![");
        if !is_attr {
            return None;
        }
        l -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_model_finds_bodies_and_names() {
        let m = FileModel::parse(
            "fn a() { b(); }\nfn b() -> Vec<u8> { Vec::new() }\ntrait T { fn c(&self); }\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_some());
        assert!(m.fns[2].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn test_modules_are_marked() {
        let m = FileModel::parse("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn reachability_is_transitive_and_in_file() {
        let src = "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n";
        let m = FileModel::parse(src);
        let names: Vec<&str> = m
            .reachable_from(&["root"])
            .into_iter()
            .map(|i| m.fns[i].name.as_str())
            .collect();
        assert_eq!(names, ["root", "mid", "leaf"]);
    }

    #[test]
    fn match_arms_parse_patterns_guards_and_bodies() {
        let src = "fn f(m: M) { match m {\n    M::A { x } if x >= 3 => go(x),\n    M::B(_) => { stop(); }\n    other => fallback(),\n} }\n";
        let m = FileModel::parse(src);
        let matches = m.matches_in(m.fns[0].body.unwrap());
        assert_eq!(matches.len(), 1);
        let arms = &matches[0].arms;
        assert_eq!(arms.len(), 3);
        let pat_text = |a: &ArmModel| -> String {
            m.toks[a.pat.0..a.pat.1]
                .iter()
                .map(|s| match &s.tok {
                    Tok::Ident(i) => i.clone(),
                    Tok::Punct(p) => p.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(pat_text(&arms[0]), "M : : A { x }", "guard excluded");
        assert_eq!(pat_text(&arms[1]), "M : : B ( _ )");
        assert_eq!(pat_text(&arms[2]), "other");
    }

    #[test]
    fn allow_markers_parse_rules_and_justification() {
        let allows = allows_by_line("// lint:allow(panic-path): map entry inserted above\n");
        let a = &allows[&1][0];
        assert_eq!(a.rule, "panic-path");
        assert_eq!(a.justification, "map entry inserted above");
    }

    #[test]
    fn allow_skips_attribute_lines() {
        let src = "// lint:allow(some-rule)\n#[derive(Debug)]\n#[allow(dead_code)]\nstruct S;\n";
        let allows = allows_by_line(src);
        let lines: Vec<&str> = src.lines().collect();
        assert!(allowed(&allows, &lines, 4, "some-rule"));
        assert!(!allowed(&allows, &lines, 4, "other-rule"));
        // A non-attribute line in between breaks the chain.
        let src2 = "// lint:allow(some-rule)\nlet x = 1;\nstruct S;\n";
        let allows2 = allows_by_line(src2);
        let lines2: Vec<&str> = src2.lines().collect();
        assert!(!allowed(&allows2, &lines2, 3, "some-rule"));
    }
}
