//! Mutation-testing harness: measure whether the `check` invariants
//! would actually kill a protocol bug.
//!
//! The explorer's six always-on invariants are a *claim* until something
//! adversarial tests them. This module makes the claim a number: it
//! applies systematic, protocol-targeted source mutations in a scratch
//! copy of the workspace, reruns the explorer smoke sweep against each
//! mutant, and classifies the result:
//!
//! * **killed (invariant)** — the sweep aborts with `INVARIANT VIOLATED`:
//!   the mutation produced a run one of the invariants caught.
//! * **killed (digest)** — the sweep stays green but its per-scenario
//!   digests differ from the unmutated baseline: the differential check
//!   caught a behavior change the invariants alone would miss.
//! * **killed (crash)** — the mutant panicked mid-sweep; still detected.
//! * **survived** — sweep green, digests identical: a real gap in the
//!   invariant net, to be documented in DESIGN.md §6.
//!
//! # Mutation operators
//!
//! Nine operators, each aimed at a protocol decision the paper's
//! correctness argument leans on (sites are discovered by scanning the
//! *current* source, so they track refactors; the pinned CI set selects
//! stable `(operator, file, occurrence)` ids):
//!
//! | operator | what it does |
//! |---|---|
//! | `quorum-off-by-one` | `distinct >= threshold` → `distinct + 1 >= threshold`: acks one fragment early |
//! | `cmp-flip` | flips a quorum/verification comparison (`==`→`!=`, `<`→`<=`, `>`→`>=`, `>=`→`>`) |
//! | `ack-drop` | deletes a `ctx.send(.. Reply ..)` statement: an acknowledgment is never sent |
//! | `fragmask-flip` | `bits[w] \|= 1 << b` → `2 << b`: fragment-presence bitmask records the wrong bit |
//! | `timer-gen-skip` | `TimerSlab` retire stops bumping the generation: cancelled timers still fire |
//! | `compaction-skip` | the converged-version compactor never fires |
//! | `delta-resolve-skip` | the FS adopts a windowed delta stripe raw instead of resolving it |
//! | `shard-merge-skip` | the parallel engine's mailbox merge drops the `(time, src-shard, seq)` tie-break |
//! | `repair-threshold-skip` | the repair actor ignores `repair_threshold` and only triggers once local parity is exhausted |
//!
//! Every mutant runs three sweeps per build: the legacy smoke sweep
//! (with the caller's extra args, e.g. `--scale --delta --repair`), then the same
//! smoke sweep under `--engine sharded` and `--engine parallel
//! --workers 2`. The three digests concatenate into one baseline, and
//! the sharded/parallel pair must be byte-identical on the unmutated
//! tree — that parallel-vs-sequential differential is the only
//! observable that kills `shard-merge-skip` (dropping the tie-break
//! leaves cross-shard ties in scheduling-dependent gather order, which
//! sequential execution never exposes).
//!
//! The build tree is copied once to `target/mutate/tree` and rebuilt
//! incrementally per mutant (shared `CARGO_TARGET_DIR`), so the dominant
//! cost is one release rebuild of the mutated crate per mutant.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
// lint:allow(wall-clock) — harness timing: measures real build/sweep cost
use std::time::{Duration, Instant};

/// The operator set: `(name, what it mutates)`.
pub const OPERATORS: &[(&str, &str)] = &[
    (
        "quorum-off-by-one",
        "threshold comparison acks one distinct fragment early (`x >= t` -> `x + 1 >= t`)",
    ),
    (
        "cmp-flip",
        "flips a protocol comparison: `.len() ==`->`!=`, `.len() <`->`<=`, `.len() >`->`>=`, \
         `>= usize::from(`->`>`, checksum `== self`->`!=`",
    ),
    (
        "ack-drop",
        "deletes a `ctx.send(.. *Reply ..)` statement so an acknowledgment is never sent",
    ),
    (
        "fragmask-flip",
        "FragMask::insert records the wrong bit (`1 << b` -> `2 << b`)",
    ),
    (
        "timer-gen-skip",
        "TimerSlab retire keeps the old generation, so cancelled timers still fire",
    ),
    (
        "compaction-skip",
        "converged-version compaction never fires (`if self.mode.compact_converged` gated \
         with `&& false`)",
    ),
    (
        "delta-resolve-skip",
        "the fragment server stores a windowed delta stripe verbatim instead of resolving \
         it against the base (`Some(resolved) => resolved` -> `fragment.clone()`)",
    ),
    (
        "shard-merge-skip",
        "the parallel engine's mailbox merge sorts by time only, dropping the \
         (time, src-shard, seq) tie-break that erases scheduling-dependent gather order",
    ),
    (
        "repair-threshold-skip",
        "the repair actor ignores the configured `repair_threshold` and only triggers \
         once local parity is exhausted (`live * 100 < pct * target` -> `live < k`)",
    ),
];

/// Files the operators scan, workspace-relative. Only protocol-decision
/// code: the actors, the protocol helpers, the timer slab, the parallel
/// engine's merge discipline and the checksum — not tests, not the
/// harness itself.
pub const TARGET_FILES: &[&str] = &[
    "crates/pahoehoe/src/proxy.rs",
    "crates/pahoehoe/src/fs.rs",
    "crates/pahoehoe/src/kls.rs",
    "crates/pahoehoe/src/protocol.rs",
    "crates/simnet/src/queue.rs",
    "crates/simnet/src/parallel.rs",
    "crates/erasure/src/checksum.rs",
    "crates/pahoehoe/src/repair.rs",
];

/// One concrete mutation: a byte-span replacement in one file.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Stable id: `operator:file-stem:occurrence`.
    pub id: String,
    /// Operator name (a key of [`OPERATORS`]).
    pub operator: &'static str,
    /// Workspace-relative file.
    pub file: PathBuf,
    /// 1-based line of the mutation site.
    pub line: usize,
    /// Byte span `[start, end)` in the file to replace.
    pub span: (usize, usize),
    /// The original text at the span.
    pub original: String,
    /// The replacement text.
    pub replacement: String,
}

impl Mutation {
    /// A one-line unified-style diff of the mutated line, for reports.
    pub fn diff(&self, src: &str) -> String {
        let line = src.lines().nth(self.line - 1).unwrap_or("").trim();
        let mutated = self.apply(src);
        let after = mutated.lines().nth(self.line - 1).unwrap_or("").trim();
        if self.replacement.is_empty() && line == after {
            // Statement deletion spanning whole lines.
            return format!("-{}", self.original.trim().replace('\n', " "));
        }
        format!("-{line}\n+{after}")
    }

    /// Applies this mutation to `src`, returning the mutated text.
    pub fn apply(&self, src: &str) -> String {
        let mut out = String::with_capacity(src.len());
        out.push_str(&src[..self.span.0]);
        out.push_str(&self.replacement);
        out.push_str(&src[self.span.1..]);
        out
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {}:{} `{}` -> `{}`",
            self.id,
            self.file.display(),
            self.line,
            self.original.replace('\n', " "),
            if self.replacement.is_empty() {
                "(deleted)"
            } else {
                &self.replacement
            }
        )
    }
}

// ---------------------------------------------------------------------------
// Site scanning
// ---------------------------------------------------------------------------

fn line_of(src: &str, byte: usize) -> usize {
    src[..byte].matches('\n').count() + 1
}

/// Byte offsets of every occurrence of `needle` in `src`.
fn occurrences(src: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = src[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// All mutation sites of every operator in one file.
pub fn scan_file(rel: &Path, src: &str) -> Vec<Mutation> {
    let stem = rel
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut out = Vec::new();
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    let mut push = |op: &'static str, start: usize, end: usize, replacement: String| {
        let n = counts.entry(op).or_insert(0);
        out.push(Mutation {
            id: format!("{op}:{stem}:{n}"),
            operator: op,
            file: rel.to_path_buf(),
            line: line_of(src, start),
            span: (start, end),
            original: src[start..end].to_string(),
            replacement,
        });
        *n += 1;
    };

    // quorum-off-by-one: a `>=` against a threshold expression.
    for pos in occurrences(src, ">= usize::from(") {
        let line_start = src[..pos].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[pos..].find('\n').map_or(src.len(), |p| pos + p);
        if src[line_start..line_end].contains("threshold") {
            push("quorum-off-by-one", pos, pos + 2, "+ 1 >=".to_string());
        }
    }

    // cmp-flip: fixed table of comparison shapes worth flipping.
    const FLIPS: &[(&str, usize, usize, &str)] = &[
        // (needle, offset of cmp within needle, cmp len, replacement)
        (".len() == ", 7, 2, "!="),
        (".len() < ", 7, 1, "<="),
        (".len() > ", 7, 1, ">="),
        (">= usize::from(", 0, 2, ">"),
        ("== self", 0, 2, "!="),
    ];
    // Needles can overlap (`.len() == self` matches both `.len() == ` and
    // `== self`); one comparison must yield one site, so dedupe on the
    // operator's byte offset.
    let mut cmp_seen = std::collections::BTreeSet::new();
    for &(needle, off, len, to) in FLIPS {
        for pos in occurrences(src, needle) {
            if cmp_seen.insert(pos + off) {
                push("cmp-flip", pos + off, pos + off + len, to.to_string());
            }
        }
    }

    // ack-drop: delete a whole `ctx.send(.. Reply ..);` statement.
    for pos in occurrences(src, "ctx.send(") {
        let open = pos + "ctx.send".len();
        let bytes = src.as_bytes();
        let mut depth = 0usize;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= bytes.len() || !src[open..j].contains("Reply") {
            continue;
        }
        // Must be a plain statement: `);` follows.
        if src[j..].starts_with(");") {
            push("ack-drop", pos, j + 2, String::new());
        }
    }

    // fragmask-flip: wrong presence bit.
    for pos in occurrences(src, "|= 1 << b") {
        push("fragmask-flip", pos + 3, pos + 4, "2".to_string());
    }

    // compaction-skip: the converged-version compactor never runs. Killed
    // through the scale check's digest line, which pins the compacted
    // count (`explore --scale`, see DESIGN.md §8.7).
    const COMPACT_GATE: &str = "if self.mode.compact_converged && newly_settled {";
    for pos in occurrences(src, COMPACT_GATE) {
        push(
            "compaction-skip",
            pos,
            pos + COMPACT_GATE.len(),
            "if self.mode.compact_converged && newly_settled && false {".to_string(),
        );
    }

    // delta-resolve-skip: only meaningful in the fragment server. Killed
    // through the `--delta` sweep: the stored stripe keeps its window
    // marker and trimmed payload, so the dense-state invariants and the
    // replay digests both diverge from the baseline.
    if stem == "fs" {
        const DELTA_RESOLVE: &str = "Some(resolved) => resolved,";
        for pos in occurrences(src, DELTA_RESOLVE) {
            push(
                "delta-resolve-skip",
                pos,
                pos + DELTA_RESOLVE.len(),
                "Some(_resolved) => fragment.clone(),".to_string(),
            );
        }
    }

    // timer-gen-skip: only meaningful in the timer slab.
    if stem == "queue" {
        for pos in occurrences(src, "wrapping_add(1)") {
            push(
                "timer-gen-skip",
                pos,
                pos + "wrapping_add(1)".len(),
                "wrapping_add(0)".to_string(),
            );
        }
    }

    // shard-merge-skip: only meaningful in the parallel engine's mailbox
    // merge. A time-only sort is *stable* over the gather order, so the
    // sequential-sharded sweep (index-ordered gather) still canonicalizes
    // ties and its digest stays on baseline; only the parallel sweep,
    // whose gather order is worker-completion order, diverges. Killed by
    // the engine-differential digest comparison.
    if stem == "parallel" {
        const MERGE_SORT: &str = "inbox.sort_by_key(|(src, env)| (env.at, *src, env.seq));";
        for pos in occurrences(src, MERGE_SORT) {
            push(
                "shard-merge-skip",
                pos,
                pos + MERGE_SORT.len(),
                "inbox.sort_by_key(|(_src, env)| env.at);".to_string(),
            );
        }
    }

    // repair-threshold-skip: only meaningful in the repair actor. The
    // mutant triggers only once local parity is exhausted (`live < k`)
    // instead of at the configured percentage — with the paper policy
    // (six local fragments, k = 4) a whole-server loss leaves the stripe
    // at live = 4, which the threshold repairs but the mutant ignores.
    // Killed by the `redundancy-floor` invariant (the stripe sits below
    // threshold past the grace period) and, belt-and-braces, by the
    // repair digest lines, which fold the EV_REPAIR_* counters
    // (`repair_triggered` drops to zero in the rack family).
    if stem == "repair" {
        const THRESHOLD: &str =
            "let below_threshold = live * 100 < u64::from(self.opts.threshold_pct) * target;";
        for pos in occurrences(src, THRESHOLD) {
            push(
                "repair-threshold-skip",
                pos,
                pos + THRESHOLD.len(),
                "let below_threshold = live < k;".to_string(),
            );
        }
    }

    out.sort_by_key(|m| (m.span.0, m.id.clone()));
    out
}

/// All mutation sites across [`TARGET_FILES`] under `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Mutation>> {
    let mut out = Vec::new();
    for rel in TARGET_FILES {
        let path = root.join(rel);
        if !path.is_file() {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        out.extend(scan_file(Path::new(rel), &src));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pinned smoke set
// ---------------------------------------------------------------------------

/// The 14 pinned protocol mutants CI runs (`mutate --smoke`), chosen to
/// cover all nine operators across proxy, FS, KLS, protocol helpers,
/// timer slab, parallel engine, checksum and repair actor. The kill-rate
/// gate and the per-mutant expectations are documented in DESIGN.md §6.
pub const PINNED_SMOKE: &[&str] = &[
    "quorum-off-by-one:proxy:0",   // put success needs one extra fragment ack
    "cmp-flip:proxy:1",            // `>= usize::from(` -> `>`: late/never client ack
    "cmp-flip:proxy:0",            // kls_complete.len() == total_klss -> != (AMR misdetect)
    "cmp-flip:fs:0",               // recovery plan `planned.len() < k` -> <=
    "cmp-flip:kls:0",              // per-DC location count == frags_per_dc -> !=
    "cmp-flip:checksum:0",         // Checksum::verify == -> != (integrity inverted)
    "ack-drop:fs:0",               // ConvergeFsReply never sent (verification stalls)
    "ack-drop:kls:0",              // DecideLocsReply never sent (put cannot place)
    "fragmask-flip:protocol:0",    // FragMask::insert sets the wrong bit
    "timer-gen-skip:queue:0",      // timer slab reuses live generations
    "compaction-skip:fs:0",        // compactor off: scale-check digest's compacted count drops
    "delta-resolve-skip:fs:0",     // delta stripes stored raw: `--delta` sweep diverges
    "shard-merge-skip:parallel:0", // merge tie-break dropped: parallel digest leaves sharded
    "repair-threshold-skip:repair:0", // repair waits for parity exhaustion: floor invariant fires
];

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// How one mutant run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The sweep aborted with an invariant violation (line attached).
    KilledInvariant(String),
    /// The sweep stayed green but per-scenario digests changed.
    KilledDigest,
    /// The mutant crashed (panic / abort) mid-sweep.
    KilledCrash,
    /// The mutant did not build (borrowck/typecheck rejected it).
    BuildError,
    /// The sweep exceeded its time budget.
    Timeout,
    /// Sweep green, digests identical to baseline: an invariant gap.
    Survived,
}

impl Outcome {
    /// Whether this outcome counts as *killed* for the CI gate. Build
    /// errors are excluded: a mutant the compiler rejects tests the type
    /// system, not the invariants. Timeouts count — a livelocked protocol
    /// is detected, just expensively.
    pub fn killed(&self) -> bool {
        !matches!(self, Outcome::Survived | Outcome::BuildError)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::KilledInvariant(_) => "killed (invariant)",
            Outcome::KilledDigest => "killed (digest)",
            Outcome::KilledCrash => "killed (crash)",
            Outcome::BuildError => "build error",
            Outcome::Timeout => "timeout",
            Outcome::Survived => "SURVIVED",
        }
    }
}

/// One mutant's full report.
#[derive(Debug)]
pub struct MutantReport {
    /// The mutation that ran.
    pub mutation: Mutation,
    /// How it ended.
    pub outcome: Outcome,
    /// Release-rebuild time for the mutated tree, seconds.
    pub build_secs: f64,
    /// Explorer smoke-sweep time, seconds.
    pub sweep_secs: f64,
}

/// The scratch build tree plus the unmutated baseline digest.
pub struct Harness {
    tree: PathBuf,
    target_dir: PathBuf,
    /// Per-scenario digests of the unmutated sweeps, concatenated under
    /// `== legacy ==` / `== sharded ==` / `== parallel2 ==` headers.
    pub baseline_digest: String,
    /// Time to build the unmutated tree from scratch, seconds.
    pub baseline_build_secs: f64,
    /// Extra arguments passed to the legacy explorer sweep.
    sweep_args: Vec<String>,
    /// Per-phase time budget.
    timeout: Duration,
}

/// Copies `src` into `dst` recursively.
fn copy_tree(src: &Path, dst: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to)?;
        } else {
            std::fs::copy(&from, &to)?;
        }
    }
    Ok(())
}

/// Runs `cmd` with stdout+stderr captured to files, killing it after
/// `timeout`. Returns `(exit_code, combined_output)`, or `None` on
/// timeout. File-backed capture (not pipes) so a chatty child can never
/// deadlock the poll loop.
fn run_with_timeout(
    cmd: &mut Command,
    log: &Path,
    timeout: Duration,
) -> io::Result<Option<(i32, String)>> {
    let out_file = std::fs::File::create(log)?;
    let err_file = out_file.try_clone()?;
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::from(out_file))
        .stderr(Stdio::from(err_file))
        .spawn()?;
    // lint:allow(wall-clock) — subprocess timeout needs real elapsed time
    let start = Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait()? {
            break status;
        }
        if start.elapsed() > timeout {
            child.kill().ok();
            child.wait().ok();
            return Ok(None);
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let mut output = String::new();
    std::fs::File::open(log)?.read_to_string(&mut output)?;
    Ok(Some((status.code().unwrap_or(-1), output)))
}

impl Harness {
    /// Copies the workspace at `root` into `target/mutate/tree`, builds
    /// the explorer there and records the unmutated baseline digest.
    /// `sweep_args` are appended to the legacy `explore --smoke --quiet`
    /// run (e.g. `--scale --delta`); the sharded and parallel engine
    /// sweeps run plain so their digests stay directly comparable.
    pub fn prepare(root: &Path, sweep_args: &[String], timeout: Duration) -> io::Result<Harness> {
        // The sweep child runs with the *tree* as its working directory, so
        // every path shared with it must be absolute — a relative root would
        // make `--digest-out` land inside the tree while the harness reads
        // a sibling path that never exists (and an empty baseline digest
        // turns the whole digest check into a no-op).
        let root = root.canonicalize()?;
        let scratch = root.join("target").join("mutate");
        let tree = scratch.join("tree");
        if tree.exists() {
            std::fs::remove_dir_all(&tree)?;
        }
        std::fs::create_dir_all(&tree)?;
        for entry in [
            "Cargo.toml",
            "Cargo.lock",
            "crates",
            "vendor",
            "src",
            "tests",
            "examples",
        ] {
            let from = root.join(entry);
            if from.is_dir() {
                copy_tree(&from, &tree.join(entry))?;
            } else if from.is_file() {
                std::fs::copy(&from, tree.join(entry))?;
            }
        }
        let mut h = Harness {
            tree,
            target_dir: scratch.join("cargo"),
            baseline_digest: String::new(),
            baseline_build_secs: 0.0,
            sweep_args: sweep_args.to_vec(),
            timeout,
        };
        // lint:allow(wall-clock) — recorded bench numbers are real time
        let t0 = Instant::now();
        let (code, out) = h
            .build()?
            .ok_or_else(|| io::Error::other("baseline build timed out"))?;
        h.baseline_build_secs = t0.elapsed().as_secs_f64();
        if code != 0 {
            return Err(io::Error::other(format!("baseline build failed:\n{out}")));
        }
        let (code, out, digest) = h
            .sweep()?
            .ok_or_else(|| io::Error::other("baseline sweep timed out"))?;
        if code != 0 {
            return Err(io::Error::other(format!(
                "baseline sweep not green (exit {code}):\n{out}"
            )));
        }
        for label in ["legacy", "sharded", "parallel2"] {
            if Self::digest_section(&digest, label).lines().count() == 0 {
                return Err(io::Error::other(format!(
                    "baseline {label} sweep wrote no digest lines: digest-based kills would be blind"
                )));
            }
        }
        // The unmutated tree must satisfy the engine-differential
        // contract: parallel at two workers is byte-identical to
        // sequential-sharded. This equality is the observable that kills
        // `shard-merge-skip` when a mutant breaks it.
        if Self::digest_section(&digest, "sharded") != Self::digest_section(&digest, "parallel2") {
            return Err(io::Error::other(
                "baseline engine digests diverge (sharded vs parallel2): \
                 the parallel engine is nondeterministic before any mutation",
            ));
        }
        h.baseline_digest = digest;
        Ok(h)
    }

    fn build(&self) -> io::Result<Option<(i32, String)>> {
        run_with_timeout(
            Command::new("cargo")
                .args(["build", "--release", "-p", "check", "--bin", "explore"])
                .current_dir(&self.tree)
                .env("CARGO_TARGET_DIR", &self.target_dir),
            &self.tree.join("build.log"),
            self.timeout,
        )
    }

    /// Runs one explorer smoke sweep in the tree with `extra` appended;
    /// returns `(exit_code, output, digest_text)`.
    fn sweep_once(
        &self,
        label: &str,
        extra: &[String],
    ) -> io::Result<Option<(i32, String, String)>> {
        let digest_path = self.tree.join(format!("digest-{label}.txt"));
        std::fs::remove_file(&digest_path).ok();
        let explore = self.target_dir.join("release").join("explore");
        let mut cmd = Command::new(explore);
        cmd.args(["--smoke", "--quiet", "--digest-out"])
            .arg(&digest_path)
            .args(extra)
            .current_dir(&self.tree);
        let log = self.tree.join(format!("sweep-{label}.log"));
        let Some((code, out)) = run_with_timeout(&mut cmd, &log, self.timeout)? else {
            return Ok(None);
        };
        let digest = std::fs::read_to_string(&digest_path).unwrap_or_default();
        Ok(Some((code, out, digest)))
    }

    /// Runs all three sweeps — legacy (with the caller's extra args),
    /// sequential-sharded and parallel at two workers — and concatenates
    /// their digests under `== label ==` headers. Short-circuits on the
    /// first non-green sweep; returns `(exit_code, output, digest_text)`.
    fn sweep(&self) -> io::Result<Option<(i32, String, String)>> {
        let mut digest = String::new();
        // The engine sweeps carry `--mesh` (a three-DC spot check): the
        // paper-shaped sweep scenarios give every shard exactly one
        // cross-shard peer, an inbox ordering no stable time-only sort
        // can disturb, so without the mesh cell the merge tie-break
        // would be unobservable and `shard-merge-skip` unkillable.
        let engines: [(&str, Vec<String>); 3] = [
            ("legacy", self.sweep_args.clone()),
            (
                "sharded",
                vec!["--engine".into(), "sharded".into(), "--mesh".into()],
            ),
            (
                "parallel2",
                vec![
                    "--engine".into(),
                    "parallel".into(),
                    "--workers".into(),
                    "2".into(),
                    "--mesh".into(),
                ],
            ),
        ];
        let mut last_out = String::new();
        for (label, extra) in &engines {
            let Some((code, out, d)) = self.sweep_once(label, extra)? else {
                return Ok(None);
            };
            if code != 0 {
                return Ok(Some((code, out, digest)));
            }
            digest.push_str(&format!("== {label} ==\n"));
            digest.push_str(&d);
            last_out = out;
        }
        Ok(Some((0, last_out, digest)))
    }

    /// Extracts one `== label ==` section from a concatenated digest.
    fn digest_section<'a>(digest: &'a str, label: &str) -> &'a str {
        let header = format!("== {label} ==\n");
        let Some(start) = digest.find(&header) else {
            return "";
        };
        let body = &digest[start + header.len()..];
        match body.find("== ") {
            Some(end) => &body[..end],
            None => body,
        }
    }

    /// Applies `m` in the tree, rebuilds, sweeps, restores the file and
    /// classifies the outcome.
    pub fn run_mutant(&self, m: &Mutation) -> io::Result<MutantReport> {
        let path = self.tree.join(&m.file);
        let pristine = std::fs::read_to_string(&path)?;
        debug_assert_eq!(
            &pristine[m.span.0..m.span.1],
            m.original,
            "mutation span drifted from the scanned source"
        );
        let result = (|| {
            std::fs::write(&path, m.apply(&pristine))?;
            // lint:allow(wall-clock) — recorded bench numbers are real time
            let t0 = Instant::now();
            let build = self.build()?;
            let build_secs = t0.elapsed().as_secs_f64();
            let outcome = match build {
                None => Outcome::Timeout,
                Some((code, _)) if code != 0 => Outcome::BuildError,
                Some(_) => {
                    // lint:allow(wall-clock) — recorded bench numbers are real time
                    let t1 = Instant::now();
                    let swept = self.sweep()?;
                    let sweep_secs = t1.elapsed().as_secs_f64();
                    return Ok(MutantReport {
                        mutation: m.clone(),
                        outcome: match swept {
                            None => Outcome::Timeout,
                            Some((0, _, digest)) if digest == self.baseline_digest => {
                                Outcome::Survived
                            }
                            Some((0, _, _)) => Outcome::KilledDigest,
                            Some((1, out, _)) => {
                                let line = out
                                    .lines()
                                    .find(|l| l.contains("INVARIANT VIOLATED"))
                                    .unwrap_or("violation (see sweep log)")
                                    .to_string();
                                Outcome::KilledInvariant(line)
                            }
                            Some((_, _, _)) => Outcome::KilledCrash,
                        },
                        build_secs,
                        sweep_secs,
                    });
                }
            };
            Ok(MutantReport {
                mutation: m.clone(),
                outcome,
                build_secs,
                sweep_secs: 0.0,
            })
        })();
        // Always restore the pristine source, even on error paths.
        std::fs::write(&path, &pristine)?;
        result
    }
}

/// Writes `BENCH_analysis.json`-style output: analyzer wall time plus
/// mutation build/sweep cost.
pub fn write_bench(
    path: &Path,
    analyzer_ms: f64,
    analyzer_files: usize,
    reports: &[MutantReport],
    baseline_build_secs: f64,
) -> io::Result<()> {
    let killed = reports.iter().filter(|r| r.outcome.killed()).count();
    let mean = |f: fn(&MutantReport) -> f64| -> f64 {
        if reports.is_empty() {
            0.0
        } else {
            reports.iter().map(f).sum::<f64>() / reports.len() as f64
        }
    };
    // Host context, local to this crate: `check` cannot depend on `bench`
    // (dependency direction), so the object is rendered here in the same
    // shape `bench::host_json` emits. The sweeps run single-threaded in
    // the parent (worker parallelism lives inside each mutant child's
    // parallel-engine sweep), and every mutant build exercises all three
    // engine paths.
    let nproc = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"analysis\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!(
        "  \"host\": {{ \"nproc\": {nproc}, \"workers\": 1, \"engine\": \"legacy+sharded+parallel2\" }},\n"
    ));
    out.push_str(&format!(
        "  \"analyzer\": {{ \"files\": {analyzer_files}, \"wall_ms\": {analyzer_ms:.2} }},\n"
    ));
    out.push_str(&format!(
        "  \"mutation\": {{ \"mutants\": {}, \"killed\": {}, \"baseline_build_s\": {:.2}, \"mean_mutant_build_s\": {:.2}, \"mean_sweep_s\": {:.2} }},\n",
        reports.len(),
        killed,
        baseline_build_secs,
        mean(|r| r.build_secs),
        mean(|r| r.sweep_secs),
    ));
    out.push_str("  \"outcomes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"outcome\": \"{}\", \"build_s\": {:.2}, \"sweep_s\": {:.2} }}{}\n",
            r.mutation.id,
            r.outcome.label(),
            r.build_secs,
            r.sweep_secs,
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_and_cmp_sites_are_found() {
        let src = "if !op.replied && distinct >= usize::from(op.meta.policy().put_success_threshold) {\n    reply();\n}\nif a.len() == b { x(); }\n";
        let ms = scan_file(Path::new("proxy.rs"), src);
        let ops: Vec<&str> = ms.iter().map(|m| m.operator).collect();
        assert!(ops.contains(&"quorum-off-by-one"));
        assert!(ops.contains(&"cmp-flip"));
        let q = ms
            .iter()
            .find(|m| m.operator == "quorum-off-by-one")
            .unwrap();
        let mutated = q.apply(src);
        assert!(mutated.contains("distinct + 1 >= usize::from"));
        assert_eq!(q.line, 1);
    }

    #[test]
    fn ack_drop_deletes_whole_reply_statement_only() {
        let src = "fn f() {\n    ctx.send(from, Message::StoreFragmentReply { ov, fragment: idx });\n    ctx.send(from, Message::StoreFragment { ov });\n}\n";
        let ms = scan_file(Path::new("fs.rs"), src);
        let drops: Vec<&Mutation> = ms.iter().filter(|m| m.operator == "ack-drop").collect();
        assert_eq!(drops.len(), 1, "non-Reply send is not a site");
        let mutated = drops[0].apply(src);
        assert!(!mutated.contains("StoreFragmentReply"));
        assert!(mutated.contains("StoreFragment {"), "other send intact");
    }

    #[test]
    fn fragmask_and_timer_sites() {
        let frag = "self.bits[w] |= 1 << b;\n";
        let ms = scan_file(Path::new("protocol.rs"), frag);
        assert_eq!(ms[0].operator, "fragmask-flip");
        assert_eq!(ms[0].apply(frag), "self.bits[w] |= 2 << b;\n");

        let queue = "self.generations[id.slot()] = self.generations[id.slot()].wrapping_add(1);\n";
        let ms = scan_file(Path::new("queue.rs"), queue);
        assert!(ms.iter().any(|m| m.operator == "timer-gen-skip"));
        // The same pattern outside queue.rs is not a timer site.
        let ms = scan_file(Path::new("metadata.rs"), queue);
        assert!(ms.iter().all(|m| m.operator != "timer-gen-skip"));
    }

    #[test]
    fn ids_are_stable_per_operator_and_file() {
        let src = "if a.len() == b {} if c.len() == d {}\n";
        let ms = scan_file(Path::new("proxy.rs"), src);
        let ids: Vec<&str> = ms.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["cmp-flip:proxy:0", "cmp-flip:proxy:1"]);
    }

    #[test]
    fn outcome_classification() {
        assert!(Outcome::KilledInvariant("x".into()).killed());
        assert!(Outcome::KilledDigest.killed());
        assert!(Outcome::Timeout.killed());
        assert!(!Outcome::Survived.killed());
        assert!(!Outcome::BuildError.killed());
    }

    #[test]
    fn pinned_set_is_fourteen_distinct_ids() {
        let set: std::collections::BTreeSet<&&str> = PINNED_SMOKE.iter().collect();
        assert_eq!(set.len(), 14);
    }

    #[test]
    fn shard_merge_skip_site_is_parallel_only() {
        let src =
            "fn merge_inbox() {\n    inbox.sort_by_key(|(src, env)| (env.at, *src, env.seq));\n}\n";
        let ms = scan_file(Path::new("parallel.rs"), src);
        let m = ms
            .iter()
            .find(|m| m.operator == "shard-merge-skip")
            .expect("site found");
        assert_eq!(m.id, "shard-merge-skip:parallel:0");
        assert!(m.apply(src).contains("|(_src, env)| env.at);"));
        // The same pattern outside parallel.rs is not a site.
        let ms = scan_file(Path::new("engine.rs"), src);
        assert!(ms.iter().all(|m| m.operator != "shard-merge-skip"));
    }

    #[test]
    fn digest_sections_round_trip() {
        let digest = "== legacy ==\na 1\nb 2\n== sharded ==\nc 3\n== parallel2 ==\nc 3\n";
        assert_eq!(Harness::digest_section(digest, "legacy"), "a 1\nb 2\n");
        assert_eq!(Harness::digest_section(digest, "sharded"), "c 3\n");
        assert_eq!(Harness::digest_section(digest, "parallel2"), "c 3\n");
        assert_eq!(Harness::digest_section(digest, "missing"), "");
    }

    #[test]
    fn compaction_skip_site_is_found() {
        let src = "fn f(&mut self) { if self.mode.compact_converged && newly_settled {\n    self.store.compact_superseded(ov);\n} }\n";
        let ms = scan_file(Path::new("fs.rs"), src);
        let m = ms
            .iter()
            .find(|m| m.operator == "compaction-skip")
            .expect("site found");
        assert_eq!(m.id, "compaction-skip:fs:0");
        assert!(m.apply(src).contains("newly_settled && false {"));
    }

    #[test]
    fn repair_threshold_skip_site_is_repair_only() {
        let src = "let k = u64::from(t.meta.policy().k);\nlet below_threshold = live * 100 < u64::from(self.opts.threshold_pct) * target;\n";
        let ms = scan_file(Path::new("repair.rs"), src);
        let m = ms
            .iter()
            .find(|m| m.operator == "repair-threshold-skip")
            .expect("site found");
        assert_eq!(m.id, "repair-threshold-skip:repair:0");
        assert!(m.apply(src).contains("let below_threshold = live < k;"));
        // The same pattern outside repair.rs is not a site.
        let ms = scan_file(Path::new("fs.rs"), src);
        assert!(ms.iter().all(|m| m.operator != "repair-threshold-skip"));
    }

    #[test]
    fn delta_resolve_skip_site_is_fs_only() {
        let src = "match base.as_ref().and_then(|b| fragment.apply_delta(b)) {\n    Some(resolved) => resolved,\n    None => return false,\n}\n";
        let ms = scan_file(Path::new("fs.rs"), src);
        let m = ms
            .iter()
            .find(|m| m.operator == "delta-resolve-skip")
            .expect("site found");
        assert_eq!(m.id, "delta-resolve-skip:fs:0");
        assert!(m
            .apply(src)
            .contains("Some(_resolved) => fragment.clone(),"));
        // The same pattern outside fs.rs is not a site.
        let ms = scan_file(Path::new("proxy.rs"), src);
        assert!(ms.iter().all(|m| m.operator != "delta-resolve-skip"));
    }
}
