//! Semantic workspace analysis: five rules the token [`lint`](crate::lint)
//! cannot express, built on the [`rustlite`](crate::rustlite) front-end.
//!
//! PRs 2–4 introduced exactly the kind of mechanical coupling that rots
//! silently: dual reference/optimized code paths behind process-wide
//! switches, a dense compile-time message-kind registry, and one unsafe
//! SIMD module. Each rule here pins one of those couplings:
//!
//! * **exhaustive-dispatch** — every variant of the `Message` enum is
//!   handled by *some* actor's `on_message` dispatch. Each actor handles
//!   its own subset behind a `debug_assert!` catch-all, so per-actor
//!   match exhaustiveness proves nothing; the union across actors is the
//!   property that catches a new message kind nobody routes.
//! * **mode-parity** — every reference/optimized switch (`set_reference_*`,
//!   `set_batched_*`, `use_reference_*` functions and `*Mode`/`*Impl`
//!   types) is exercised by at least one test. Matching is against test
//!   *token streams* (integration-test files and `#[cfg(test)]` modules),
//!   not raw text, so doc prose never satisfies the obligation. A switch
//!   function is also satisfied by a test driving a `*Mode`/`*Impl` type
//!   defined in the same file (e.g. `ProtocolMode::reference()` exercises
//!   `set_reference_protocol_mode`'s knob per actor).
//! * **panic-path** — `.unwrap()`, `.expect()` and non-literal indexing
//!   reachable from an actor dispatch root (`on_message` / `on_timer` /
//!   `on_start`, plus the engine's `run_impl` event loop) via the
//!   intra-file call graph must carry `// lint:allow(panic-path): <why>`
//!   with a **non-empty** justification, or be refactored into a checked
//!   accessor. A bare marker without a justification is itself a finding.
//! * **unsafe-confinement** — `unsafe` appears only inside `mod simd` of
//!   `gf.rs` (the `erasure::gf::simd` PSHUFB kernels). Everywhere else the
//!   crates `forbid(unsafe_code)`, but that attribute is one edit away
//!   from being weakened; this rule notices the edit.
//! * **registry-sync** — the dense kind registry stays coherent:
//!   `KINDS` labels are unique, `kind_id` maps every enum variant exactly
//!   once onto ids that exactly cover `0..KINDS.len()`, and per-kind
//!   dense arrays — in any file that references the registry, whatever
//!   their element type — are sized from `registry.len()`, never a
//!   hand-written integer.
//!
//! All rules degrade safely on code the model cannot parse: no finding is
//! ever produced from a construct rustlite does not understand, and the
//! lexer never panics (see the robustness proptest in
//! `tests/analysis_fixtures.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lint::json_escape;
use crate::rustlite::{
    self, allows_by_line, bracket_range, find_allow, ident, punct, FileModel, Spanned, Tok,
};

/// The rule set: `(name, what it enforces)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "exhaustive-dispatch",
        "every Message enum variant is handled by some actor's on_message dispatch match \
         (union across actors; per-actor catch-alls hide silently dropped kinds)",
    ),
    (
        "mode-parity",
        "every reference/optimized switch (set_reference_*/set_batched_*/use_reference_* fns, \
         *Mode/*Impl types) is exercised by at least one test's token stream",
    ),
    (
        "panic-path",
        "unwrap/expect/non-literal indexing reachable from actor dispatch roots must carry \
         lint:allow(panic-path) with a justification, or be refactored",
    ),
    (
        "unsafe-confinement",
        "unsafe code appears only inside mod simd of gf.rs (erasure::gf::simd)",
    ),
    (
        "registry-sync",
        "KINDS labels unique, kind_id total and onto 0..KINDS.len(), dense per-kind arrays \
         in registry-referencing files sized from the registry length",
    ),
];

/// Index of `rule` in [`RULES`] — the bit it occupies in the CLI's
/// per-rule exit code (see `bin/analyze.rs`).
pub fn rule_bit(rule: &str) -> Option<usize> {
    RULES.iter().position(|(name, _)| *name == rule)
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule name (a key of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

impl Finding {
    /// This finding as one JSON object (hand-rolled; the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"col":{},"rule":"{}","message":"{}"}}"#,
            json_escape(&self.file.display().to_string()),
            self.line,
            self.col,
            self.rule,
            json_escape(&self.message)
        )
    }
}

// ---------------------------------------------------------------------------
// Workspace model
// ---------------------------------------------------------------------------

/// One source file: raw text plus the parsed [`FileModel`].
pub struct SrcFile {
    /// Path, as loaded (workspace-relative when loaded via [`Workspace::load`]).
    pub path: PathBuf,
    /// Raw source text.
    pub src: String,
    /// The parsed model.
    pub model: FileModel,
    /// Whether the file is an integration-test file (under a `tests/`
    /// directory) — its whole token stream counts as test code.
    pub is_test_file: bool,
}

impl SrcFile {
    fn new(path: PathBuf, src: String) -> SrcFile {
        let is_test_file = path.components().any(|c| c.as_os_str() == "tests");
        let model = FileModel::parse(&src);
        SrcFile {
            path,
            src,
            model,
            is_test_file,
        }
    }

    /// Whether token `i` is test code (an integration-test file, or inside
    /// a `#[cfg(test)]` module).
    fn tok_in_test(&self, i: usize) -> bool {
        self.is_test_file || self.model.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }
}

/// A set of parsed source files the rules run over.
pub struct Workspace {
    /// The files, in deterministic (path-sorted) order.
    pub files: Vec<SrcFile>,
}

impl Workspace {
    /// Loads the real workspace layout: `crates/*/src/**/*.rs` plus
    /// `crates/*/tests/**/*.rs` under `root`, skipping `vendor/`. When
    /// `root` has no `crates/` directory (rule fixtures), every `.rs`
    /// under `root` is loaded instead, with files under any `tests/`
    /// component treated as test files.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let crates = root.join("crates");
        let mut files = Vec::new();
        if crates.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                for sub in ["src", "tests"] {
                    let d = dir.join(sub);
                    if d.is_dir() {
                        crate::lint::rs_files(&d, &mut files)?;
                    }
                }
            }
            // Fixture corpora are deliberately-bad *data*, not workspace
            // code (the analyzer's own tests feed them back through
            // `Workspace::load` on their private roots).
            files.retain(|p| {
                p.strip_prefix(root)
                    .unwrap_or(p)
                    .components()
                    .all(|c| c.as_os_str() != "fixtures")
            });
        } else {
            crate::lint::rs_files(root, &mut files)?;
        }
        let mut out = Vec::new();
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(SrcFile::new(rel, src));
        }
        Ok(Workspace { files: out })
    }

    /// Builds a workspace from in-memory sources (unit tests).
    pub fn from_sources(sources: Vec<(PathBuf, String)>) -> Workspace {
        Workspace {
            files: sources
                .into_iter()
                .map(|(p, s)| SrcFile::new(p, s))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// Whether an identifier looks like a numeric literal (starts with a
/// digit; covers `0`, `42usize`, `0xff`).
fn is_numeric(id: &str) -> bool {
    id.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Variant names of the first `enum <name>` in the file, with the line of
/// each variant. Variants are identifiers at brace-depth 0 inside the
/// enum body that start an item (first token, or right after a depth-0
/// `,` or an attribute's closing `]`).
fn enum_variants(f: &SrcFile, name: &str) -> Vec<(String, usize)> {
    let toks = &f.model.toks;
    let Some(kw) = (0..toks.len()).find(|&i| {
        ident(toks, i) == Some("enum") && ident(toks, i + 1) == Some(name) && !f.tok_in_test(i)
    }) else {
        return Vec::new();
    };
    let Some(open) = (kw..toks.len()).find(|&j| punct(toks, j) == Some('{')) else {
        return Vec::new();
    };
    let end = rustlite::brace_range(toks, open);
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut at_item_start = true;
    let mut j = open + 1;
    while j + 1 < end {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
                j += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                // An attribute's `]` at depth 0 still precedes the variant.
                at_item_start = depth == 0 && toks[j].tok == Tok::Punct(']') && at_item_start;
                j += 1;
            }
            Tok::Punct(',') if depth == 0 => {
                at_item_start = true;
                j += 1;
            }
            Tok::Punct('#') if depth == 0 => j += 1, // attribute start
            Tok::Ident(id) if depth == 0 && at_item_start => {
                out.push((id.clone(), toks[j].line));
                at_item_start = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    out
}

/// `Enum::Variant` references in a token range: every ident directly
/// preceded by `<enum_name> ::`.
fn qualified_refs(toks: &[Spanned], range: (usize, usize), enum_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        if let Some(v) = ident(toks, i) {
            if rustlite::preceded_by(toks, i, enum_name) {
                out.push(v.to_string());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 1: exhaustive-dispatch
// ---------------------------------------------------------------------------

fn rule_exhaustive_dispatch(ws: &Workspace, out: &mut Vec<Finding>) {
    // The dispatched enum and where it lives.
    let Some((enum_file, variants)) = ws.files.iter().find_map(|f| {
        let v = enum_variants(f, "Message");
        (!v.is_empty()).then_some((f, v))
    }) else {
        return;
    };
    // Union of `Message::X` patterns across every actor's on_message.
    let mut handled: BTreeSet<String> = BTreeSet::new();
    let mut saw_dispatch = false;
    for f in &ws.files {
        for func in f.model.fns.iter().filter(|f| !f.in_test) {
            if func.name != "on_message" {
                continue;
            }
            let Some(body) = func.body else { continue };
            for m in f.model.matches_in(body) {
                for arm in &m.arms {
                    let refs = qualified_refs(&f.model.toks, arm.pat, "Message");
                    saw_dispatch |= !refs.is_empty();
                    handled.extend(refs);
                }
            }
        }
    }
    if !saw_dispatch {
        // No actor dispatch in this workspace at all — nothing to check
        // (the fixture-less degenerate case, not a violation).
        return;
    }
    for (variant, line) in variants {
        if !handled.contains(&variant) {
            out.push(Finding {
                file: enum_file.path.clone(),
                line,
                col: 1,
                rule: "exhaustive-dispatch",
                message: format!(
                    "Message::{variant} is not handled by any actor's on_message dispatch; \
                     a send of this kind would hit a catch-all and be silently dropped"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: mode-parity
// ---------------------------------------------------------------------------

fn is_switch_fn(name: &str) -> bool {
    name.starts_with("set_reference_")
        || name.starts_with("set_batched_")
        || name.starts_with("use_reference_")
}

fn is_mode_type(name: &str) -> bool {
    (name.ends_with("Mode") || name.ends_with("Impl")) && name.len() > 4
}

fn rule_mode_parity(ws: &Workspace, out: &mut Vec<Finding>) {
    // Every identifier that appears anywhere in test code.
    let mut test_idents: BTreeSet<&str> = BTreeSet::new();
    for f in &ws.files {
        for (i, sp) in f.model.toks.iter().enumerate() {
            if let Tok::Ident(id) = &sp.tok {
                if f.tok_in_test(i) {
                    test_idents.insert(id.as_str());
                }
            }
        }
    }
    for f in &ws.files {
        if f.is_test_file {
            continue;
        }
        // Mode types defined in this file (enum or struct).
        let toks = &f.model.toks;
        let mut local_types: Vec<(String, usize)> = Vec::new();
        for i in 0..toks.len() {
            if matches!(ident(toks, i), Some("enum") | Some("struct")) && !f.tok_in_test(i) {
                if let Some(name) = ident(toks, i + 1) {
                    if is_mode_type(name) {
                        local_types.push((name.to_string(), toks[i].line));
                    }
                }
            }
        }
        let type_covered = local_types
            .iter()
            .any(|(name, _)| test_idents.contains(name.as_str()));
        // Each mode type is itself an obligation.
        for (name, line) in &local_types {
            if !test_idents.contains(name.as_str()) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: *line,
                    col: 1,
                    rule: "mode-parity",
                    message: format!(
                        "mode type `{name}` is not exercised by any test; add a differential \
                         test driving it against the default implementation"
                    ),
                });
            }
        }
        // Each switch function: direct test reference, or a tested mode
        // type from the same file.
        for func in f.model.fns.iter().filter(|f| !f.in_test) {
            if is_switch_fn(&func.name)
                && !test_idents.contains(func.name.as_str())
                && !type_covered
            {
                out.push(Finding {
                    file: f.path.clone(),
                    line: func.line,
                    col: 1,
                    rule: "mode-parity",
                    message: format!(
                        "mode switch `{}` is not exercised by any test (no test references it \
                         or a *Mode/*Impl type from its file); the reference path it gates is \
                         untested",
                        func.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: panic-path
// ---------------------------------------------------------------------------

/// Dispatch roots: the actor handler trait methods plus the engine's
/// event loop, which is the same always-on hot path.
const DISPATCH_ROOTS: &[&str] = &["on_message", "on_timer", "on_start", "run_impl"];

/// Keywords that can directly precede `[` without forming an index
/// expression (`for x in [..]`, `return [..]`, `= [1, 2]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "if", "else", "return", "match", "let", "mut", "move", "break", "continue", "loop",
    "while", "do", "yield", "as",
];

fn rule_panic_path(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if f.is_test_file {
            continue;
        }
        let has_root = f
            .model
            .fns
            .iter()
            .any(|func| !func.in_test && DISPATCH_ROOTS.contains(&func.name.as_str()));
        if !has_root {
            continue;
        }
        let toks = &f.model.toks;
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for idx in f.model.reachable_from(DISPATCH_ROOTS) {
            let func = &f.model.fns[idx];
            let Some((start, end)) = func.body else {
                continue;
            };
            for i in start..end.min(toks.len()) {
                let sp = &toks[i];
                if !seen.insert((sp.line, sp.col)) {
                    continue;
                }
                match &sp.tok {
                    Tok::Ident(id)
                        if (id == "unwrap" || id == "expect")
                            && punct(toks, i + 1) == Some('(')
                            && punct(toks, i.wrapping_sub(1)) == Some('.') =>
                    {
                        out.push(Finding {
                            file: f.path.clone(),
                            line: sp.line,
                            col: sp.col,
                            rule: "panic-path",
                            message: format!(
                                "`.{id}()` reachable from actor dispatch (via `{}`); justify \
                                 with `// lint:allow(panic-path): <why>` or refactor to a \
                                 checked accessor",
                                func.name
                            ),
                        });
                    }
                    Tok::Punct('[') => {
                        // Index expression: `expr[...]` — previous token is a
                        // non-keyword ident, `)` or `]`.
                        let is_index = match toks.get(i.wrapping_sub(1)).map(|s| &s.tok) {
                            Some(Tok::Ident(prev)) => {
                                !NON_INDEX_KEYWORDS.contains(&prev.as_str()) && !is_numeric(prev)
                            }
                            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                            _ => false,
                        };
                        if !is_index {
                            continue;
                        }
                        let close = bracket_range(toks, i);
                        let content = &toks[i + 1..close.saturating_sub(1).min(toks.len())];
                        let idents: Vec<&str> = content
                            .iter()
                            .filter_map(|s| match &s.tok {
                                Tok::Ident(id) => Some(id.as_str()),
                                _ => None,
                            })
                            .collect();
                        // Literal-only indexes (`bits[0]`) cannot be wrong at
                        // runtime in a way tests would not catch immediately;
                        // empty/whole-range slices (`x[..]`) cannot panic.
                        if idents.is_empty() || idents.iter().all(|id| is_numeric(id)) {
                            continue;
                        }
                        out.push(Finding {
                            file: f.path.clone(),
                            line: sp.line,
                            col: sp.col,
                            rule: "panic-path",
                            message: format!(
                                "unchecked index reachable from actor dispatch (via `{}`); \
                                 justify with `// lint:allow(panic-path): <why>` or use a \
                                 checked accessor",
                                func.name
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: unsafe-confinement
// ---------------------------------------------------------------------------

fn rule_unsafe_confinement(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let toks = &f.model.toks;
        let is_gf = f.path.file_name().is_some_and(|n| n == "gf.rs");
        // `mod simd { … }` ranges, only meaningful in gf.rs.
        let simd_ranges: Vec<(usize, usize)> = (0..toks.len())
            .filter(|&i| {
                ident(toks, i) == Some("mod")
                    && ident(toks, i + 1) == Some("simd")
                    && punct(toks, i + 2) == Some('{')
            })
            .map(|i| (i + 2, rustlite::brace_range(toks, i + 2)))
            .collect();
        for i in 0..toks.len() {
            if ident(toks, i) != Some("unsafe") {
                continue;
            }
            let confined = is_gf && simd_ranges.iter().any(|&(s, e)| i >= s && i < e);
            if !confined {
                out.push(Finding {
                    file: f.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "unsafe-confinement",
                    message: "`unsafe` outside erasure::gf::simd; all other crates must stay \
                              forbid(unsafe_code)"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: registry-sync
// ---------------------------------------------------------------------------

/// String literals inside the `&[ … ]` initializer following the first
/// `KINDS` occurrence in the *raw* source (the stripped token stream
/// blanks strings, so labels must be read from the original text).
fn kinds_labels(src: &str) -> Option<(Vec<String>, usize)> {
    let at = src.find("KINDS")?;
    // Skip the type annotation (`: &'static [&'static str]`) — the
    // initializer's bracket is the first one after the `=`.
    let eq = at + src[at..].find('=')?;
    let open = eq + src[eq..].find('[')?;
    let line = src[..open].matches('\n').count() + 1;
    let mut labels = Vec::new();
    let mut chars = src[open + 1..].chars();
    while let Some(c) = chars.next() {
        match c {
            ']' => return Some((labels, line)),
            '"' => {
                let mut label = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    label.push(c);
                }
                labels.push(label);
            }
            _ => {}
        }
    }
    Some((labels, line))
}

fn rule_registry_sync(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let toks = &f.model.toks;
        let has_kinds = (0..toks.len())
            .any(|i| ident(toks, i) == Some("KINDS") && punct(toks, i + 1) == Some(':'));
        if has_kinds {
            registry_file_checks(f, out);
        }
        // Dense per-kind arrays: any file that touches the kind registry
        // (reads `KINDS` or a `registry` binding) must size every
        // repeat-form vec! from the registry length, not a hand-written
        // integer. Gating on the registry reference rather than one
        // blessed element type keeps the rule covering whatever per-kind
        // arrays the metrics layer grows next.
        let references_registry = toks
            .iter()
            .any(|s| matches!(&s.tok, Tok::Ident(id) if id == "KINDS" || id == "registry"));
        if !references_registry {
            continue;
        }
        for i in 0..toks.len() {
            if ident(toks, i) != Some("vec")
                || punct(toks, i + 1) != Some('!')
                || punct(toks, i + 2) != Some('[')
                || f.tok_in_test(i)
            {
                continue;
            }
            let close = bracket_range(toks, i + 2);
            // Repeat form: `vec![elem; size]` — the `;` at bracket depth 1.
            let mut depth = 0isize;
            let mut semi = None;
            for j in i + 2..close {
                match punct(toks, j) {
                    Some('[') | Some('(') | Some('{') => depth += 1,
                    Some(']') | Some(')') | Some('}') => depth -= 1,
                    Some(';') if depth == 1 => {
                        semi = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(semi) = semi else { continue };
            let size_idents: Vec<&str> = toks[semi + 1..close.saturating_sub(1)]
                .iter()
                .filter_map(|s| match &s.tok {
                    Tok::Ident(id) => Some(id.as_str()),
                    _ => None,
                })
                .collect();
            if !size_idents.is_empty() && size_idents.iter().all(|id| is_numeric(id)) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "registry-sync",
                    message: "dense per-kind array sized by an integer literal; size it from \
                              the kind registry (`registry.len()`) so a new message kind cannot \
                              desynchronize it"
                        .to_string(),
                });
            }
        }
    }
}

/// Checks internal coherence of the file defining `KINDS`: unique labels,
/// and a `kind_id` that maps every `Message` variant exactly once onto
/// ids exactly covering `0..KINDS.len()`.
fn registry_file_checks(f: &SrcFile, out: &mut Vec<Finding>) {
    let Some((labels, kinds_line)) = kinds_labels(&f.src) else {
        return;
    };
    if labels.is_empty() {
        return;
    }
    let mut seen = BTreeSet::new();
    for label in &labels {
        if !seen.insert(label) {
            out.push(Finding {
                file: f.path.clone(),
                line: kinds_line,
                col: 1,
                rule: "registry-sync",
                message: format!("duplicate KINDS label `{label}`"),
            });
        }
    }
    let n = labels.len();
    let variants = enum_variants(f, "Message");
    let Some(kind_id) = f.model.fn_named("kind_id") else {
        return;
    };
    let Some(body) = kind_id.body else { return };
    let Some(m) = f.model.matches_in(body).into_iter().next() else {
        return;
    };
    // variant -> ids it maps to (a `|` pattern maps several variants to one
    // id — the Batch variants share their singular counterpart's label).
    let mut mapped: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut ids_used: BTreeSet<usize> = BTreeSet::new();
    for arm in &m.arms {
        let mut vs = qualified_refs(&f.model.toks, arm.pat, "Message");
        vs.extend(qualified_refs(&f.model.toks, arm.pat, "Self"));
        let id = (arm.body.0..arm.body.1.min(f.model.toks.len()))
            .find_map(|j| ident(&f.model.toks, j).and_then(|t| t.parse::<usize>().ok()));
        let Some(id) = id else { continue };
        ids_used.insert(id);
        for v in vs {
            mapped.entry(v).or_default().push(id);
        }
        if id >= n {
            out.push(Finding {
                file: f.path.clone(),
                line: f.model.toks[arm.pat.0].line,
                col: f.model.toks[arm.pat.0].col,
                rule: "registry-sync",
                message: format!("kind_id {id} is out of range for KINDS (len {n})"),
            });
        }
    }
    if mapped.is_empty() {
        return; // kind_id not written as a literal match; nothing checkable
    }
    for (variant, line) in &variants {
        match mapped.get(variant).map(Vec::len).unwrap_or(0) {
            0 => out.push(Finding {
                file: f.path.clone(),
                line: *line,
                col: 1,
                rule: "registry-sync",
                message: format!("Message::{variant} has no kind_id mapping"),
            }),
            1 => {}
            _ => out.push(Finding {
                file: f.path.clone(),
                line: *line,
                col: 1,
                rule: "registry-sync",
                message: format!("Message::{variant} is mapped by more than one kind_id arm"),
            }),
        }
    }
    if !variants.is_empty() {
        for (i, label) in labels.iter().enumerate() {
            if !ids_used.contains(&i) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: kinds_line,
                    col: 1,
                    rule: "registry-sync",
                    message: format!(
                        "KINDS[{i}] = `{label}` is produced by no kind_id arm; the label is \
                         dead and the dense arrays misattribute everything after it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs every rule over the workspace, applies `lint:allow` suppression
/// and returns the surviving findings, path/line sorted.
///
/// `panic-path` findings require a marker **with a justification**: a
/// bare `// lint:allow(panic-path)` converts the finding into a
/// missing-justification finding rather than suppressing it.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut raw = Vec::new();
    rule_exhaustive_dispatch(ws, &mut raw);
    rule_mode_parity(ws, &mut raw);
    rule_panic_path(ws, &mut raw);
    rule_unsafe_confinement(ws, &mut raw);
    rule_registry_sync(ws, &mut raw);

    let mut out = Vec::new();
    for f in &ws.files {
        let allows = allows_by_line(&f.src);
        let lines: Vec<&str> = f.src.lines().collect();
        for finding in raw.iter().filter(|x| x.file == f.path) {
            match find_allow(&allows, &lines, finding.line, finding.rule) {
                None => out.push(finding.clone()),
                Some(a) if finding.rule == "panic-path" && a.justification.is_empty() => {
                    out.push(Finding {
                        message: "lint:allow(panic-path) requires a one-line justification \
                                  after the marker, e.g. `// lint:allow(panic-path): entry \
                                  inserted by the put path above`"
                            .to_string(),
                        ..finding.clone()
                    });
                }
                Some(_) => {}
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Loads the workspace at `root` and runs [`analyze`].
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze(&Workspace::load(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (PathBuf::from(p), s.to_string()))
                .collect(),
        )
    }

    fn rules_hit(ws: &Workspace) -> Vec<&'static str> {
        analyze(ws).into_iter().map(|f| f.rule).collect()
    }

    const ENUM: &str = "pub enum Message { Put { x: u8 }, Get(u8), Ack }\n";

    #[test]
    fn dispatch_union_across_actors() {
        // Two actors, each partial, union complete: clean.
        let complete = ws(&[
            ("messages.rs", ENUM),
            (
                "a.rs",
                "fn on_message(&mut self, msg: Message) { match msg { Message::Put { x } => go(x), Message::Ack => ack(), _ => {} } }",
            ),
            (
                "b.rs",
                "fn on_message(&mut self, msg: Message) { match msg { Message::Get(g) => go(g), _ => {} } }",
            ),
        ]);
        assert!(rules_hit(&complete).is_empty());

        // Nobody handles Get: finding names the variant.
        let partial = ws(&[
            ("messages.rs", ENUM),
            (
                "a.rs",
                "fn on_message(&mut self, msg: Message) { match msg { Message::Put { x } => go(x), Message::Ack => ack(), _ => {} } }",
            ),
        ]);
        let fs = analyze(&partial);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "exhaustive-dispatch");
        assert!(fs[0].message.contains("Message::Get"));
    }

    #[test]
    fn constructions_in_arm_bodies_do_not_count_as_handled() {
        // The arm body *sends* Message::Get but never matches it.
        let w = ws(&[
            ("messages.rs", "pub enum Message { Put, Get }\n"),
            (
                "a.rs",
                "fn on_message(&mut self, msg: Message) { match msg { Message::Put => send(Message::Get), _ => {} } }",
            ),
        ]);
        // Pattern-only scanning would be fooled by body constructions if we
        // scanned the whole arm; prove we only read patterns.
        let fs = analyze(&w);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("Message::Get"));
    }

    #[test]
    fn mode_parity_needs_a_test_reference() {
        let sw = "pub fn set_reference_fast_mode(on: bool) { FLAG.store(on); }\n";
        // Untested: finding.
        let w = ws(&[("m.rs", sw)]);
        assert_eq!(rules_hit(&w), vec!["mode-parity"]);
        // Referenced from an integration-test file: clean.
        let w = ws(&[
            ("m.rs", sw),
            (
                "tests/diff.rs",
                "fn t() { set_reference_fast_mode(true); }\n",
            ),
        ]);
        assert!(rules_hit(&w).is_empty());
        // Referenced only from a doc comment: still a finding.
        let w = ws(&[
            ("m.rs", sw),
            (
                "tests/diff.rs",
                "// set_reference_fast_mode is great\nfn t() {}\n",
            ),
        ]);
        assert_eq!(rules_hit(&w), vec!["mode-parity"]);
        // A cfg(test) module in the same crate also counts.
        let w = ws(&[(
            "m.rs",
            "pub fn set_reference_fast_mode(on: bool) {}\n#[cfg(test)]\nmod tests { fn t() { set_reference_fast_mode(true); } }\n",
        )]);
        assert!(rules_hit(&w).is_empty());
    }

    #[test]
    fn mode_type_in_tests_covers_same_file_switches() {
        let w = ws(&[
            (
                "m.rs",
                "pub fn set_reference_fast_mode(on: bool) {}\npub struct FastMode { pub on: bool }\n",
            ),
            ("tests/diff.rs", "fn t() { let m = FastMode { on: true }; }\n"),
        ]);
        assert!(rules_hit(&w).is_empty());
        // An untested mode type is its own finding.
        let w = ws(&[("m.rs", "pub enum CodecGenImpl { A, B }\n")]);
        assert_eq!(rules_hit(&w), vec!["mode-parity"]);
    }

    #[test]
    fn panic_path_flags_reachable_sites_only() {
        // unwrap inside a helper reachable from on_message: finding.
        let w = ws(&[(
            "actor.rs",
            "fn on_message(&mut self) { self.step(); }\nfn step(&mut self) { self.map.get(&k).unwrap(); }\n",
        )]);
        let fs = analyze(&w);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "panic-path");
        assert!(fs[0].message.contains("via `step`"));

        // Same helper, not reachable from any root: clean.
        let w = ws(&[(
            "util.rs",
            "fn helper(&mut self) { self.map.get(&k).unwrap(); }\n",
        )]);
        assert!(rules_hit(&w).is_empty());

        // Justified marker suppresses; bare marker does not.
        let w = ws(&[(
            "actor.rs",
            "fn on_message(&mut self) {\n    // lint:allow(panic-path): entry inserted above\n    self.m.get(&k).expect(\"x\");\n}\n",
        )]);
        assert!(rules_hit(&w).is_empty());
        let w = ws(&[(
            "actor.rs",
            "fn on_message(&mut self) {\n    // lint:allow(panic-path)\n    self.m.get(&k).expect(\"x\");\n}\n",
        )]);
        let fs = analyze(&w);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("justification"));
    }

    #[test]
    fn panic_path_indexing() {
        // Map index with a non-literal key: finding.
        let w = ws(&[(
            "actor.rs",
            "fn on_timer(&mut self) { let v = self.puts[&ov]; }\n",
        )]);
        assert_eq!(rules_hit(&w), vec!["panic-path"]);
        // Literal index and array literals: clean.
        let w = ws(&[(
            "actor.rs",
            "fn on_timer(&mut self) { let v = self.bits[0]; let a = [1, 2]; for x in [3, 4] {} }\n",
        )]);
        assert!(rules_hit(&w).is_empty());
    }

    #[test]
    fn unsafe_confined_to_gf_simd() {
        let confined =
            "mod simd {\n    pub fn f() { unsafe { core::arch::x86_64::_mm_pause() } }\n}\n";
        assert!(rules_hit(&ws(&[("gf.rs", confined)])).is_empty());
        // Same code in another file: finding.
        assert_eq!(
            rules_hit(&ws(&[("codec.rs", confined)])),
            vec!["unsafe-confinement"]
        );
        // unsafe in gf.rs but outside mod simd: finding.
        let outside = "pub fn f() { unsafe { core::arch::x86_64::_mm_pause() } }\n";
        assert_eq!(
            rules_hit(&ws(&[("gf.rs", outside)])),
            vec!["unsafe-confinement"]
        );
    }

    const REGISTRY_OK: &str = r#"
pub enum Message { Put, PutBatch, Get }
impl Payload for Message {
    const KINDS: &'static [&'static str] = &["PutReq", "GetReq"];
    fn kind_id(&self) -> usize {
        match self {
            Message::Put { .. } | Message::PutBatch { .. } => 0,
            Message::Get { .. } => 1,
        }
    }
}
"#;

    #[test]
    fn registry_sync_accepts_shared_batch_ids() {
        assert!(rules_hit(&ws(&[("messages.rs", REGISTRY_OK)])).is_empty());
    }

    #[test]
    fn registry_sync_catches_unmapped_variant_and_dead_label() {
        let src = r#"
pub enum Message { Put, Get, Del }
impl Payload for Message {
    const KINDS: &'static [&'static str] = &["PutReq", "GetReq", "DelReq"];
    fn kind_id(&self) -> usize {
        match self {
            Message::Put { .. } => 0,
            Message::Get { .. } => 1,
        }
    }
}
"#;
        let fs = analyze(&ws(&[("messages.rs", src)]));
        let msgs: Vec<&str> = fs.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs
            .iter()
            .any(|m| m.contains("Message::Del has no kind_id")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`DelReq` is produced by no kind_id arm")));
    }

    #[test]
    fn registry_sync_catches_duplicate_label_and_out_of_range_id() {
        let src = r#"
pub enum Message { Put, Get }
impl Payload for Message {
    const KINDS: &'static [&'static str] = &["PutReq", "PutReq"];
    fn kind_id(&self) -> usize {
        match self {
            Message::Put { .. } => 0,
            Message::Get { .. } => 7,
        }
    }
}
"#;
        let fs = analyze(&ws(&[("messages.rs", src)]));
        let msgs: Vec<&str> = fs.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("duplicate KINDS label")));
        assert!(msgs.iter().any(|m| m.contains("out of range")));
    }

    #[test]
    fn registry_sync_dense_array_sizing() {
        // Element type is irrelevant: any literal-sized repeat vec! in a
        // registry-referencing file drifts.
        let bad = "fn new(registry: &[&str]) -> Vec<u64> { let s = vec![0u64; registry.len()]; let d = vec![DropStats::default(); 22]; d }\n";
        assert_eq!(
            rules_hit(&ws(&[("metrics.rs", bad)])),
            vec!["registry-sync"]
        );
        let good = "struct M { s: Vec<KindStats> }\nfn new(registry: &[&str]) -> M { M { s: vec![KindStats::default(); registry.len()] } }\n";
        assert!(rules_hit(&ws(&[("metrics.rs", good)])).is_empty());
        // Non-repeat vec!, and literal vec! in a file that never touches
        // the registry: out of scope.
        let unrelated = "fn f() { let v = vec![1, 2, 3]; let w = vec![0; 4]; }\n";
        assert!(rules_hit(&ws(&[("other.rs", unrelated)])).is_empty());
    }
}
