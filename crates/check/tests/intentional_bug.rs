//! End-to-end proof that the checker machinery actually detects
//! violations: a deliberately injected bug (a silent fragment corruption)
//! must be flagged, shrunk to a minimal repro and traced — both through
//! the library API and through the `explore` binary's exit status.

use check::explorer::{sweep, FaultSpec, Injection, Preset, SweepConfig, WorkloadCfg};

#[test]
fn injected_corruption_is_caught_and_shrunk() {
    let cfg = SweepConfig {
        seeds: vec![7],
        // Start from a *faulty* plan so the shrinker has work to do.
        fault_specs: vec![FaultSpec {
            drop_centi: 3,
            dup_centi: 2,
            outages: vec![],
        }],
        presets: vec![Preset::All],
        workload: WorkloadCfg {
            puts: 2,
            value_len: 2048,
            ..WorkloadCfg::default()
        },
    };
    let result = sweep(&cfg, Injection::CorruptFragment, |_, _| {});
    let report = result.violation.expect("corruption must violate");
    assert!(
        matches!(
            report.violation.invariant,
            "checksum-integrity" | "acked-durability" | "durable-monotone"
        ),
        "unexpected invariant: {}",
        report.violation.invariant
    );
    assert!(
        report.shrunk.faults.is_clean(),
        "the bug fires without any network fault, so shrinking must strip them all: {:?}",
        report.shrunk.faults
    );
    assert_eq!(report.shrunk.seed, 7, "seed is preserved");
    assert_eq!(report.shrunk.preset, Preset::All, "preset is preserved");
    assert!(!report.trace.is_empty(), "violating run must carry a trace");
}

#[test]
fn explore_binary_exits_nonzero_with_repro_and_trace() {
    let trace_path = std::env::temp_dir().join("check-intentional-bug.trace");
    let _ = std::fs::remove_file(&trace_path);
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "--smoke",
            "--quiet",
            "--inject-corruption",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("explore binary runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "violation must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("INVARIANT VIOLATED"), "stdout: {stdout}");
    assert!(stdout.contains("shrunk repro"), "stdout: {stdout}");
    let trace = std::fs::read_to_string(&trace_path).expect("trace dumped");
    assert!(!trace.is_empty());
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn clean_mini_sweep_reports_no_violation() {
    let cfg = SweepConfig {
        seeds: vec![0, 1],
        fault_specs: SweepConfig::fault_pool().into_iter().take(2).collect(),
        presets: vec![Preset::Naive, Preset::All],
        workload: WorkloadCfg {
            puts: 2,
            value_len: 2048,
            ..WorkloadCfg::default()
        },
    };
    let mut seen = 0;
    let result = sweep(&cfg, Injection::None, |_, outcome| {
        seen += 1;
        assert!(outcome.events > 0);
    });
    assert!(result.violation.is_none());
    assert_eq!(result.scenarios_run, 8);
    assert_eq!(seen, 8);
    assert!(result.events_checked > 0);
}
