//! Replay determinism: two identically seeded full-cluster runs are
//! bit-for-bit identical — same event count, same metrics, same message
//! trace — even under message loss, duplication and an outage.

use check::explorer::{run_scenario, FaultSpec, Injection, Outage, Preset, Scenario, WorkloadCfg};

fn faulty_scenario(seed: u64) -> Scenario {
    Scenario {
        seed,
        faults: FaultSpec {
            drop_centi: 5,
            dup_centi: 3,
            outages: vec![Outage {
                node: 4, // an FS in DC 0 under the paper layout
                start_secs: 0,
                dur_secs: 45,
            }],
        },
        preset: Preset::All,
    }
}

#[test]
fn identical_seeds_replay_byte_identically() {
    let wl = WorkloadCfg {
        puts: 3,
        value_len: 2048,
        ..WorkloadCfg::default()
    };
    let sc = faulty_scenario(42);
    let a = run_scenario(&sc, &wl, Injection::None, true);
    let b = run_scenario(&sc, &wl, Injection::None, true);

    assert!(a.violation.is_none() && b.violation.is_none());
    assert_eq!(a.events, b.events, "event counts diverged");
    assert_eq!(a.sim_time, b.sim_time, "virtual clocks diverged");
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.metrics_digest, b.metrics_digest, "metrics diverged");
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "message traces diverged");
}

#[test]
fn different_seeds_diverge() {
    let wl = WorkloadCfg {
        puts: 2,
        value_len: 2048,
        ..WorkloadCfg::default()
    };
    let a = run_scenario(&faulty_scenario(1), &wl, Injection::None, true);
    let b = run_scenario(&faulty_scenario(2), &wl, Injection::None, true);
    assert_ne!(
        a.trace.unwrap(),
        b.trace.unwrap(),
        "different seeds must explore different schedules"
    );
}
