//! Cross-run convergence invariant for the protocol hot-path modes:
//! batched and unbatched runs of the same scenario must converge to
//! identical AMR states.
//!
//! Batched rounds are coalesced *accounting* — each entry still traverses
//! the simulated channel individually, in the unbatched order, drawing
//! the same RNG — and metadata sharing is a representation change, so the
//! final AMR ledger ([`explorer::amr_digest`]), the event count and the
//! virtual end time must all be bit-identical across every
//! [`ProtocolMode`]. The reference and optimized modes must additionally
//! match on the traffic-metrics digest; batching legitimately changes
//! physical message counts, so only its logical outcomes are compared.

use check::explorer::{self, FaultSpec, Injection, Outage, Preset, Scenario, WorkloadCfg};
use pahoehoe::cluster::ClusterLayout;
use pahoehoe::protocol::ProtocolMode;

fn workload() -> WorkloadCfg {
    WorkloadCfg {
        puts: 4,
        value_len: 2048,
        ..WorkloadCfg::default()
    }
}

/// A small but representative scenario slice: both convergence-heavy
/// presets, a clean run, a lossy run, and an outage run.
fn scenarios() -> Vec<Scenario> {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let outage = FaultSpec {
        drop_centi: 2,
        dup_centi: 1,
        outages: vec![Outage {
            node: layout.fs(0, 0).index() as u32,
            start_secs: 2,
            dur_secs: 90,
        }],
    };
    let lossy = FaultSpec {
        drop_centi: 5,
        dup_centi: 2,
        outages: Vec::new(),
    };
    let mut out = Vec::new();
    for preset in [Preset::Naive, Preset::All] {
        for (seed, faults) in [
            (1u64, FaultSpec::clean()),
            (7, lossy.clone()),
            (11, outage.clone()),
        ] {
            out.push(Scenario {
                seed,
                preset,
                faults,
            });
        }
    }
    out
}

#[test]
fn all_protocol_modes_converge_to_identical_amr_states() {
    let wl = workload();
    for sc in scenarios() {
        let reference = explorer::run_scenario_pinned(
            &sc,
            &wl,
            Injection::None,
            false,
            ProtocolMode::reference(),
        );
        let optimized = explorer::run_scenario_pinned(
            &sc,
            &wl,
            Injection::None,
            false,
            ProtocolMode::optimized(),
        );
        let batched = explorer::run_scenario_pinned(
            &sc,
            &wl,
            Injection::None,
            false,
            ProtocolMode::batched(),
        );

        for (label, run) in [
            ("reference", &reference),
            ("optimized", &optimized),
            ("batched", &batched),
        ] {
            assert!(
                run.violation.is_none(),
                "{label} run of {sc:?} violated an invariant: {:?}",
                run.violation
            );
        }

        assert!(
            !optimized.amr_digest.is_empty(),
            "scenario {sc:?} produced no versions to compare"
        );
        assert_eq!(
            optimized.amr_digest, reference.amr_digest,
            "reference vs optimized AMR ledgers diverged for {sc:?}"
        );
        assert_eq!(
            optimized.amr_digest, batched.amr_digest,
            "batched vs unbatched AMR ledgers diverged for {sc:?}"
        );
        assert_eq!(
            (optimized.events, optimized.sim_time),
            (batched.events, batched.sim_time),
            "batching changed the event sequence for {sc:?}"
        );
        assert_eq!(
            (optimized.events, optimized.sim_time),
            (reference.events, reference.sim_time),
            "metadata sharing changed the event sequence for {sc:?}"
        );
        // Sharing is a pure representation change, so even the traffic
        // metrics match; batching coalesces physical messages, so its
        // metrics legitimately differ and are not compared.
        assert_eq!(
            optimized.metrics_digest, reference.metrics_digest,
            "reference vs optimized metrics diverged for {sc:?}"
        );
    }
}
