//! The semantic analyzer against known-bad fixture workspaces: every
//! rule must fire on its positive fixture and stay silent on the
//! negative twin, the real workspace must be clean, and the `rustlite`
//! front-end must survive arbitrary mutilations of the fixture sources
//! (a crashed analyzer is a skipped CI gate).

use std::path::{Path, PathBuf};

use check::analysis::{analyze_workspace, Finding};
use check::rustlite::FileModel;
use proptest::prelude::*;

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analysis")
        .join(case)
}

fn run(case: &str) -> Vec<Finding> {
    analyze_workspace(&fixture_root(case)).expect("fixture workspace loads")
}

fn rules_hit(findings: &[Finding]) -> Vec<&str> {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn dispatch_missing_variant_fires() {
    let fs = run("dispatch_missing");
    assert_eq!(rules_hit(&fs), ["exhaustive-dispatch"]);
    assert!(fs[0].message.contains("Message::Get"));
}

#[test]
fn dispatch_union_across_actors_is_clean() {
    assert_eq!(run("dispatch_ok"), []);
}

#[test]
fn dispatch_body_construction_does_not_count() {
    let fs = run("dispatch_body_construction");
    assert_eq!(rules_hit(&fs), ["exhaustive-dispatch"]);
    assert!(fs[0].message.contains("Message::Get"));
}

#[test]
fn mode_switch_without_test_fires() {
    let fs = run("mode_untested");
    assert_eq!(rules_hit(&fs), ["mode-parity"]);
    assert!(fs[0].message.contains("set_reference_fast_mode"));
}

#[test]
fn mode_type_in_tests_covers_switch() {
    assert_eq!(run("mode_ok"), []);
}

#[test]
fn panic_path_reachable_unwrap_fires() {
    let fs = run("panic_unjustified");
    assert_eq!(rules_hit(&fs), ["panic-path"]);
    assert!(fs[0].message.contains("via `step`"));
}

#[test]
fn panic_path_bare_marker_fires() {
    let fs = run("panic_bare_marker");
    assert_eq!(rules_hit(&fs), ["panic-path"]);
    assert!(fs[0].message.contains("justification"));
}

#[test]
fn panic_path_justified_marker_is_clean() {
    assert_eq!(run("panic_ok"), []);
}

#[test]
fn unsafe_outside_gf_simd_fires() {
    let fs = run("unsafe_leak");
    assert_eq!(rules_hit(&fs), ["unsafe-confinement"]);
    assert_eq!(fs.len(), 2, "codec.rs and gf.rs-outside-simd");
}

#[test]
fn unsafe_inside_gf_simd_is_clean() {
    assert_eq!(run("unsafe_ok"), []);
}

#[test]
fn registry_drift_fires() {
    let fs = run("registry_drift");
    assert_eq!(rules_hit(&fs), ["registry-sync"]);
    let msgs: Vec<&str> = fs.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs
        .iter()
        .any(|m| m.contains("Message::Del has no kind_id")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`DelReq` is produced by no kind_id arm")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("sized by an integer literal")));
}

#[test]
fn registry_coherent_is_clean() {
    assert_eq!(run("registry_ok"), []);
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = analyze_workspace(&root).expect("workspace loads");
    assert!(
        findings.is_empty(),
        "semantic analysis must pass on the real workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn analyze_binary_exits_clean_on_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg(&root)
        .output()
        .expect("analyze binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Every fixture source in the corpus, for the robustness property.
fn corpus() -> Vec<String> {
    let mut files = Vec::new();
    collect(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures"),
        &mut files,
    );
    assert!(files.len() >= 20, "fixture corpus present");
    files
}

fn collect(dir: &Path, out: &mut Vec<String>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(std::fs::read_to_string(&p).expect("fixture reads"));
        }
    }
}

/// One source mutilation: truncate, splice in noise, or overwrite bytes.
#[derive(Debug, Clone)]
enum Mutilation {
    Truncate(usize),
    Insert(usize, String),
    Overwrite(usize, u8),
}

fn mutilation() -> impl Strategy<Value = Mutilation> {
    (0u8..3, 0usize..4096, any::<u8>(), "[{}()\"'/*]{0,6}").prop_map(|(kind, at, byte, noise)| {
        match kind {
            0 => Mutilation::Truncate(at),
            1 => Mutilation::Insert(at, noise),
            _ => Mutilation::Overwrite(at, byte),
        }
    })
}

fn apply(src: &str, m: &Mutilation) -> String {
    let mut bytes = src.as_bytes().to_vec();
    match m {
        Mutilation::Truncate(at) => bytes.truncate(*at.min(&bytes.len())),
        Mutilation::Insert(at, s) => {
            let at = (*at).min(bytes.len());
            bytes.splice(at..at, s.bytes());
        }
        Mutilation::Overwrite(at, b) => {
            if let Some(slot) = bytes.get_mut(*at) {
                *slot = *b;
            }
        }
    }
    // Mutilations land on byte offsets; keep whatever is still UTF-8.
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The front-end (and the full rule set over the resulting model)
    /// must never panic on mutilated input — unbalanced delimiters,
    /// unterminated strings, bytes in the middle of tokens.
    #[test]
    fn mutilated_fixture_sources_never_crash_the_front_end(
        file_idx: usize,
        muts in proptest::collection::vec(mutilation(), 1..5),
    ) {
        let corpus = corpus();
        let mut src = corpus[file_idx % corpus.len()].clone();
        for m in &muts {
            src = apply(&src, m);
        }
        let model = FileModel::parse(&src);
        let _ = model.matches_in((0, model.toks.len()));
        let ws = check::analysis::Workspace::from_sources(vec![
            (PathBuf::from("mutilated.rs"), src),
        ]);
        let _ = check::analysis::analyze(&ws);
    }
}
