//! The determinism lint against known-bad fixture files: every hazard
//! class must be detected, allow markers must suppress, and the real
//! workspace must be clean.

use check::lint::{lint_file, lint_workspace, Finding};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules_hit(findings: &[Finding]) -> Vec<&str> {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn detects_hash_collections() {
    let findings = lint_file(&fixture("hash_collections.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["hash-collections"]);
    assert!(findings.len() >= 3, "use, two fields, return type + ctor");
}

#[test]
fn detects_wall_clock() {
    let findings = lint_file(&fixture("wall_clock.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["wall-clock"]);
    assert_eq!(
        findings.len(),
        4,
        "two imports + Instant::now + SystemTime::now"
    );
}

#[test]
fn detects_ambient_rng() {
    let findings = lint_file(&fixture("ambient_rng.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["ambient-rng"]);
    assert_eq!(findings.len(), 2, "thread_rng + rand::random");
}

#[test]
fn detects_thread_spawn() {
    let findings = lint_file(&fixture("thread_spawn.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["thread-spawn"]);
    assert_eq!(findings.len(), 2);
}

#[test]
fn detects_float_keys() {
    let findings = lint_file(&fixture("float_key.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["float-key"]);
    assert_eq!(findings.len(), 2, "f64 and f32 keys, qualified or not");
}

#[test]
fn detects_hot_path_alloc() {
    let findings = lint_file(&fixture("hot_path_alloc.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["hot-path-alloc"]);
    assert_eq!(findings.len(), 2, "Vec::new + to_vec in the marked fn");
    assert!(findings.iter().all(|f| f.line <= 9), "cold fn not flagged");
}

#[test]
fn detects_simulation_core_hot_path_regressions() {
    // The engine's real hot paths (wheel dispatch, `record_send`) carry
    // `// lint:hot` markers; this fixture mirrors their shape and proves
    // an allocating regression in either one trips the lint.
    let findings = lint_file(&fixture("hot_queue_regression.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["hot-path-alloc"]);
    assert_eq!(findings.len(), 2, "to_vec in pop + Vec::new in record_send");
    assert!(
        findings.iter().any(|f| f.excerpt.contains("to_vec")),
        "wheel-dispatch regression flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.excerpt.contains("Vec::new")),
        "record_send regression flagged: {findings:?}"
    );
}

#[test]
fn detects_protocol_round_hot_path_regressions() {
    // The fragment server's convergence round and scrub walks carry
    // `// lint:hot` markers after the scratch-reuse fix; this fixture
    // mirrors their shape and proves the two historical allocation
    // patterns (copying the version list, a per-version Vec of corrupt
    // indices) trip the lint.
    let findings = lint_file(&fixture("hot_round_regression.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["hot-path-alloc"]);
    assert_eq!(findings.len(), 2, "to_vec in run_round + Vec::new in scrub");
    assert!(
        findings.iter().any(|f| f.excerpt.contains("to_vec")),
        "round-walk copy regression flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.excerpt.contains("Vec::new")),
        "scrub per-version Vec regression flagged: {findings:?}"
    );
}

#[test]
fn detects_stripe_cache_lookup_regressions() {
    // The proxy's stripe-cache lookup (the per-put delta-vs-full decision)
    // carries a `// lint:hot` marker; this fixture mirrors its shape and
    // proves the two plausible allocation regressions — copying the cached
    // value out, staging the dirty-window diff in a fresh buffer — trip
    // the lint.
    let findings = lint_file(&fixture("hot_cache_lookup_regression.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["hot-path-alloc"]);
    assert_eq!(findings.len(), 2, "to_vec in lookup + Vec::new in window");
    assert!(
        findings.iter().any(|f| f.excerpt.contains("to_vec")),
        "cached-value copy regression flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.excerpt.contains("Vec::new")),
        "dirty-window staging regression flagged: {findings:?}"
    );
}

#[test]
fn detects_shared_mutable_state() {
    let findings = lint_file(&fixture("shared_mutable.rs")).unwrap();
    assert_eq!(rules_hit(&findings), ["shared-mutable"]);
    assert_eq!(
        findings.len(),
        11,
        "imports, static mut, atomics, OnceLock, lazy_static, LazyLock: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.excerpt.contains("static mut")),
        "static mut flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.excerpt.contains("lazy_static")),
        "lazy_static flagged: {findings:?}"
    );
}

#[test]
fn allow_markers_and_noncode_text_suppress() {
    let findings = lint_file(&fixture("allowed.rs")).unwrap();
    assert!(findings.is_empty(), "expected clean, got: {findings:?}");
}

#[test]
fn findings_carry_usable_positions() {
    let findings = lint_file(&fixture("wall_clock.rs")).unwrap();
    let f = &findings[2];
    assert!(f.file.ends_with("wall_clock.rs"));
    assert_eq!(f.line, 5, "Instant::now() is on line 5");
    assert!(f.col >= 1);
    assert!(f.excerpt.contains("Instant"));
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).unwrap();
    assert!(
        findings.is_empty(),
        "determinism lint must pass on the real workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_binary_exits_clean_on_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg(&root)
        .output()
        .expect("lint binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
