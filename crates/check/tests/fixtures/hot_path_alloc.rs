// Fixture: per-call allocations inside declared hot paths.

// lint:hot
fn hot_copy(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let extra = data.to_vec();
    out.extend_from_slice(&extra);
    out
}

fn cold_copy(data: &[u8]) -> Vec<u8> {
    // Unmarked functions may allocate freely.
    data.to_vec()
}

// lint:hot
fn hot_clean(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}
