// Fixture: ambient (OS-seeded) randomness outside the simulation RNG.
fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    let _ = &mut rng;
    x
}
