fn on_message(&mut self) {
    // lint:allow(panic-path): entry inserted by the dispatch above
    self.m.get(&k).expect("x");
    let v = self.bits[0];
}
fn helper_not_reachable(&mut self) {
    self.map.get(&k).unwrap();
}
