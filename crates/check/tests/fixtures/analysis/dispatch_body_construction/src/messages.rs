//! Fixture: an arm body *sends* `Message::Get`; that is not handling it.
pub enum Message {
    Put,
    Get,
}
