fn on_message(&mut self, msg: Message) {
    match msg {
        Message::Put => send(Message::Get),
        _ => {}
    }
}
