//! Fixture: a marker with no justification is itself a finding.
fn on_message(&mut self) {
    // lint:allow(panic-path)
    self.m.get(&k).expect("x");
}
