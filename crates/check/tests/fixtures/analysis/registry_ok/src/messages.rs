pub enum Message {
    Put,
    PutBatch,
    Get,
}
impl Payload for Message {
    const KINDS: &'static [&'static str] = &["PutReq", "GetReq"];
    fn kind_id(&self) -> usize {
        match self {
            Message::Put { .. } | Message::PutBatch { .. } => 0,
            Message::Get { .. } => 1,
        }
    }
}
