struct M {
    sends: Vec<u64>,
    drops: Vec<DropStats>,
}
fn with_registry(registry: &[&str]) -> M {
    M {
        sends: vec![0; registry.len()],
        drops: vec![DropStats::default(); registry.len()],
    }
}
