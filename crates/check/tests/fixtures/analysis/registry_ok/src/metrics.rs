struct M {
    s: Vec<KindStats>,
}
fn new(registry: &[&str]) -> M {
    M {
        s: vec![KindStats::default(); registry.len()],
    }
}
