struct M {
    s: Vec<KindStats>,
}
fn new() -> M {
    M {
        s: vec![KindStats::default(); 22],
    }
}
