//! Fixture: unmapped variant, dead label, duplicate label, id range.
pub enum Message {
    Put,
    Get,
    Del,
}
impl Payload for Message {
    const KINDS: &'static [&'static str] = &["PutReq", "GetReq", "DelReq"];
    fn kind_id(&self) -> usize {
        match self {
            Message::Put { .. } => 0,
            Message::Get { .. } => 1,
        }
    }
}
