fn on_message(&mut self, msg: Message) {
    match msg {
        Message::Get(g) => go(g),
        _ => {}
    }
}
