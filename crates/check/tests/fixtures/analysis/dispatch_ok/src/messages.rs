//! Fixture: `Message::Get` is dispatched by no actor.
pub enum Message {
    Put { x: u8 },
    Get(u8),
    Ack,
}
