fn on_message(&mut self, msg: Message) {
    match msg {
        Message::Put { x } => go(x),
        Message::Ack => ack(),
        _ => {}
    }
}
