fn drives_both_modes() {
    let m = FastMode { on: true };
    run(m);
}
