pub fn set_reference_fast_mode(on: bool) {
    FLAG.store(on);
}
pub struct FastMode {
    pub on: bool,
}
