//! Fixture: `unsafe` outside `erasure::gf::simd`.
mod simd {
    pub fn f() {
        unsafe { core::arch::x86_64::_mm_pause() }
    }
}
