pub fn outside_simd() {
    unsafe { core::arch::x86_64::_mm_pause() }
}
