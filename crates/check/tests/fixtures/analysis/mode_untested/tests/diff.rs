// Mentioning set_reference_fast_mode in a comment does not count.
fn exercises_something_else() {}
