//! Fixture: a reference-mode switch no differential test exercises.
pub fn set_reference_fast_mode(on: bool) {
    FLAG.store(on);
}
