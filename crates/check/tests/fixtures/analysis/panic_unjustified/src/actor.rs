//! Fixture: an unwrap reachable from `on_message` through a helper.
fn on_message(&mut self) {
    self.step();
}
fn step(&mut self) {
    self.map.get(&k).unwrap();
}
