// Fixture: wall-clock reads that desynchronize replays.
use std::time::{Instant, SystemTime};

fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = (t0, wall);
    0
}
