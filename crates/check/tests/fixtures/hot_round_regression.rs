// Fixture: the fragment server's declared protocol hot paths — the
// convergence round walk and the scrub pass — with the allocating
// regressions the lint must catch if they ever creep back in. The real
// functions (`Fs::run_round`, `Fs::scrub`) reuse `version_scratch` and a
// `FragMask`; copying the version list or building a per-version Vec
// undoes exactly that fix.

struct Store {
    pending: Vec<(u64, u32)>,
}

struct Server {
    store: Store,
    version_scratch: Vec<(u64, u32)>,
}

impl Server {
    // lint:hot
    fn run_round_regressed(&mut self) -> usize {
        // Regression: snapshotting the pending list copies it on every
        // round instead of reusing the scratch buffer.
        let versions = self.store.pending.to_vec();
        versions.len()
    }

    // lint:hot
    fn run_round_clean(&mut self) -> usize {
        let mut versions = std::mem::take(&mut self.version_scratch);
        versions.clear();
        versions.extend_from_slice(&self.store.pending);
        let n = versions.len();
        self.version_scratch = versions;
        n
    }

    // lint:hot
    fn scrub_regressed(&mut self) -> usize {
        // Regression: collecting corrupted indices into a fresh Vec per
        // version instead of a stack bitmask.
        let mut bad = Vec::new();
        for &(ov, _) in &self.store.pending {
            if ov % 2 == 0 {
                bad.push(ov);
            }
        }
        bad.len()
    }

    // lint:hot
    fn scrub_clean(&mut self) -> usize {
        let mut bad = 0u64;
        for &(ov, _) in &self.store.pending {
            if ov % 2 == 0 {
                bad |= 1 << (ov % 64);
            }
        }
        bad.count_ones() as usize
    }
}
