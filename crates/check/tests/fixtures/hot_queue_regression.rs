// Fixture: the simulation core's declared hot paths — the timing-wheel
// dispatch loop and the per-send metrics update — with the allocating
// regressions the lint must catch if they ever creep back in.

struct Wheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
}

impl Wheel {
    // lint:hot
    fn pop_regressed(&mut self) -> Option<u64> {
        // Regression: draining a slot by copying it out allocates on
        // every dispatch.
        let drained = self.slots[self.cursor].to_vec();
        self.slots[self.cursor].clear();
        drained.first().copied()
    }

    // lint:hot
    fn pop_clean(&mut self) -> Option<u64> {
        let slot = &mut self.slots[self.cursor];
        slot.pop()
    }
}

struct Metrics {
    counts: Vec<u64>,
}

impl Metrics {
    // lint:hot
    fn record_send_regressed(&mut self, kind_id: usize, label: &[u8]) {
        // Regression: building a per-call key buffer turns the O(1)
        // array bump back into an allocating map-style update.
        let mut key = Vec::new();
        key.extend_from_slice(label);
        self.counts[kind_id % key.len().max(1)] += 1;
    }

    // lint:hot
    fn record_send_clean(&mut self, kind_id: usize) {
        self.counts[kind_id] += 1;
    }
}
