// Fixture: the proxy's declared hot path — the per-put stripe-cache
// lookup that decides delta-vs-full encoding — with the allocating
// regressions the lint must catch if they ever creep back in.

struct CachedStripe {
    value: Vec<u8>,
    fragments: Vec<Vec<u8>>,
}

struct StripeCache {
    entries: Vec<(u64, CachedStripe)>,
}

impl StripeCache {
    // lint:hot
    fn lookup_regressed(&self, key: u64) -> Option<Vec<u8>> {
        // Regression: returning an owned copy of the cached value
        // allocates on every put, delta or not.
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| s.value.to_vec())
    }

    // lint:hot
    fn lookup_clean(&self, key: u64) -> Option<&CachedStripe> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, s)| s)
    }

    // lint:hot
    fn delta_window_regressed(&self, key: u64, new: &[u8]) -> usize {
        // Regression: staging the dirty-window diff in a fresh buffer
        // turns the in-place column scan into a per-put allocation.
        let mut dirty = Vec::new();
        if let Some((_, s)) = self.entries.iter().find(|(k, _)| *k == key) {
            for (i, (a, b)) in s.value.iter().zip(new).enumerate() {
                if a != b {
                    dirty.push(i);
                }
            }
        }
        dirty.len()
    }

    // lint:hot
    fn delta_window_clean(&self, key: u64, new: &[u8]) -> usize {
        match self.entries.iter().find(|(k, _)| *k == key) {
            Some((_, s)) => s.value.iter().zip(new).filter(|(a, b)| a != b).count(),
            None => 0,
        }
    }
}
