// Fixture: every hazard is either suppressed by an allow marker or only
// mentioned in comments/strings, so this file must lint clean.
use std::collections::HashMap; // lint:allow(hash-collections)

struct Cache {
    // lint:allow(hash-collections) membership probes only, never iterated
    seen: HashMap<u64, u64>,
}

fn doc() -> &'static str {
    // Instant::now() and thread_rng() in a comment are fine.
    "SystemTime::now() and std::thread::spawn in a string are fine too"
}

fn lifetimes<'a>(m: &'a std::collections::BTreeMap<u64, f64>) -> &'a f64 {
    m.get(&0).unwrap()
}

// lint:hot
fn warmup(data: &[u8]) -> Vec<u8> {
    // lint:allow(hot-path-alloc) one-time setup copy, outside steady state
    data.to_vec()
}
