// Fixture: floating-point map keys (NaN breaks Ord/Eq assumptions).
use std::collections::BTreeMap;

struct Sched {
    by_score: BTreeMap<f64, u32>,
    by_rate: std::collections::BTreeMap<f32, Vec<u8>>,
}
