// Fixture: iteration-order-dependent collections in actor code.
use std::collections::{HashMap, HashSet};

struct Fs {
    frags: HashMap<u64, Vec<u8>>,
    peers: HashSet<u32>,
}

fn rebuild() -> std::collections::HashMap<String, u64> {
    std::collections::HashMap::new()
}
