// Fixture: real concurrency inside the single-threaded simulation.
fn background() {
    std::thread::spawn(|| {});
    let h = std::thread::spawn(move || 42);
    let _ = h;
}
