//! Fixture: every shared-mutable hazard class the determinism lint must
//! flag — process-global mutable state that leaks between runs and, on
//! the parallel engine, across worker shards.
use std::sync::atomic::AtomicBool;
use std::sync::OnceLock;

static mut LEGACY_COUNTER: u64 = 0;

static SWITCH: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Vec<u32>> = OnceLock::new();

fn tally() -> u64 {
    let n = AtomicUsize::new(0);
    n.into_inner()
}

lazy_static! {
    static ref TABLE: Vec<u32> = Vec::new();
}

fn cached() -> &'static str {
    static NAME: LazyLock<String> = LazyLock::new(|| "x".to_string());
    &NAME
}
