//! Property test: every registered invariant holds across randomized
//! fault plans, for both the naïve and the fully optimized convergence
//! configurations.

use check::explorer::{run_scenario, FaultSpec, Injection, Outage, Preset, Scenario, WorkloadCfg};
use proptest::prelude::*;

const WORKLOAD: WorkloadCfg = WorkloadCfg {
    engine: pahoehoe::cluster::EngineMode::Legacy,
    puts: 2,
    value_len: 2048,
    rounds: 1,
};

fn assert_invariants_hold(seed: u64, faults: FaultSpec, preset: Preset) {
    let sc = Scenario {
        seed,
        faults,
        preset,
    };
    let outcome = run_scenario(&sc, &WORKLOAD, Injection::None, false);
    assert!(
        outcome.violation.is_none(),
        "invariant violated: {:?} for {sc:?}",
        outcome.violation
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn invariants_hold_under_random_faults(
        seed in 0u64..10_000,
        drop_centi in 0u8..=8,
        dup_centi in 0u8..=5,
        // Server node index (paper layout: ids 0–9 are KLSs and FSs) and
        // outage window.
        node in 0u32..10,
        start_secs in 0u64..=30,
        dur_secs in 1u64..=90,
    ) {
        let faults = FaultSpec {
            drop_centi,
            dup_centi,
            outages: vec![Outage { node, start_secs, dur_secs }],
        };
        assert_invariants_hold(seed, faults.clone(), Preset::Naive);
        assert_invariants_hold(seed, faults, Preset::All);
    }

    #[test]
    fn invariants_hold_fault_free(seed in 0u64..10_000) {
        assert_invariants_hold(seed, FaultSpec::clean(), Preset::Naive);
        assert_invariants_hold(seed, FaultSpec::clean(), Preset::All);
    }
}
