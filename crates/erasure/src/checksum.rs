//! Fragment integrity checksums.
//!
//! The paper's system model (§3.1) notes that Pahoehoe "detect\[s\] disk
//! corruption using hashes" (elided there for space). This module supplies
//! that hash: a fast 64-bit content checksum recorded when a fragment is
//! durably stored and re-verified by the fragment server's scrubber. It
//! detects corruption, not adversaries — Pahoehoe's failure model is
//! benign (no Byzantine faults), so a non-cryptographic hash suffices.
//!
//! The implementation is FNV-1a over 8-byte lanes with a finalization mix
//! (xorshift-multiply avalanche), giving good dispersion at memory speed
//! with zero dependencies.

/// A 64-bit content checksum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Checksum(u64);

impl Checksum {
    /// Computes the checksum of `data`.
    pub fn of(data: &[u8]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let lane = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h ^= lane;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Finalization avalanche (splitmix64 tail).
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        Checksum(h)
    }

    /// Whether `data` still matches this checksum.
    pub fn verify(self, data: &[u8]) -> bool {
        Checksum::of(data) == self
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(Checksum::of(b"abc"), Checksum::of(b"abc"));
        assert_ne!(Checksum::of(b"abc"), Checksum::of(b"abd"));
        assert_ne!(Checksum::of(b"abc"), Checksum::of(b"abc\0"));
        assert_ne!(Checksum::of(b""), Checksum::of(b"\0"));
    }

    #[test]
    fn verify_detects_single_bit_flips() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let sum = Checksum::of(&data);
        assert!(sum.verify(&data));
        for bit in [0usize, 7, 8 * 4999 + 3, 8 * 9999 + 7] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(!sum.verify(&corrupted), "bit {bit} undetected");
        }
    }

    #[test]
    fn dispersion_over_similar_inputs() {
        // Checksums of near-identical inputs should not collide and
        // should differ in roughly half their bits on average.
        let mut total_bits = 0u32;
        let n = 500u64;
        for i in 0..n {
            let a = Checksum::of(&i.to_le_bytes());
            let b = Checksum::of(&(i + 1).to_le_bytes());
            assert_ne!(a, b);
            total_bits += (a.as_u64() ^ b.as_u64()).count_ones();
        }
        let avg = f64::from(total_bits) / n as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }
}
