//! Fragment integrity checksums.
//!
//! The paper's system model (§3.1) notes that Pahoehoe "detect\[s\] disk
//! corruption using hashes" (elided there for space). This module supplies
//! that hash: a fast 64-bit content checksum recorded when a fragment is
//! durably stored and re-verified by the fragment server's scrubber. It
//! detects corruption, not adversaries — Pahoehoe's failure model is
//! benign (no Byzantine faults), so a non-cryptographic hash suffices.
//!
//! The implementation runs **four independent FNV-1a lanes** over 32-byte
//! chunks — breaking the single-lane multiply dependency chain that caps
//! plain FNV at one multiply per 8 bytes — then folds the lanes together
//! with rotations, absorbs the tail serially, and finishes with a
//! splitmix64 avalanche. A single-lane reference implementation is kept
//! behind [`Checksum::set_reference_mode`] for the benchmark baseline;
//! the two modes produce **different values** (nothing persists
//! checksums, so only within-run consistency matters).

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch to the single-lane reference checksum; see
/// [`Checksum::set_reference_mode`].
static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// A 64-bit content checksum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Checksum(u64);

impl Checksum {
    /// Computes the checksum of `data`.
    // lint:hot
    pub fn of(data: &[u8]) -> Self {
        if Self::reference_mode() {
            return Self::of_reference(data);
        }
        // Four FNV-1a lanes advance in lockstep over 32-byte chunks, so
        // the four multiplies per chunk are independent and pipeline.
        let mut lanes: [u64; 4] = [
            FNV_OFFSET,
            FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
            FNV_OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
            FNV_OFFSET ^ 0x1656_67b1_9e37_79f9,
        ];
        let mut chunks = data.chunks_exact(32);
        for c in &mut chunks {
            for (lane, word) in lanes.iter_mut().zip(c.chunks_exact(8)) {
                *lane ^= u64::from_le_bytes(word.try_into().expect("8-byte word"));
                *lane = lane.wrapping_mul(FNV_PRIME);
            }
        }
        // Fold the lanes with distinct rotations so no two lanes can
        // cancel, then absorb the (at most 31-byte) tail serially.
        let mut h = lanes[0];
        for lane in &lanes[1..] {
            h = h.rotate_left(27).wrapping_mul(FNV_PRIME) ^ lane;
        }
        h ^= data.len() as u64;
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Checksum(finalize(h))
    }

    /// Whether `data` still matches this checksum.
    pub fn verify(self, data: &[u8]) -> bool {
        Checksum::of(data) == self
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Switches every checksum in the process to the single-lane
    /// reference implementation (the seed's plain FNV-1a over 8-byte
    /// words). The two modes yield **different checksum values** — that
    /// is fine because checksums are computed and verified within one
    /// run and never persisted — so this exists solely for the recorded
    /// benchmark baseline to measure honest before/after throughput.
    /// Not for production use.
    pub fn set_reference_mode(enabled: bool) {
        REFERENCE_MODE.store(enabled, Ordering::Relaxed);
    }

    /// Whether [`set_reference_mode`](Self::set_reference_mode) is on.
    pub fn reference_mode() -> bool {
        REFERENCE_MODE.load(Ordering::Relaxed)
    }

    /// The seed implementation: one FNV-1a lane over 8-byte words.
    fn of_reference(data: &[u8]) -> Self {
        let mut h: u64 = FNV_OFFSET;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let lane = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h ^= lane;
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Checksum(finalize(h))
    }
}

/// Finalization avalanche (splitmix64 tail).
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(Checksum::of(b"abc"), Checksum::of(b"abc"));
        assert_ne!(Checksum::of(b"abc"), Checksum::of(b"abd"));
        assert_ne!(Checksum::of(b"abc"), Checksum::of(b"abc\0"));
        assert_ne!(Checksum::of(b""), Checksum::of(b"\0"));
    }

    #[test]
    fn verify_detects_single_bit_flips() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let sum = Checksum::of(&data);
        assert!(sum.verify(&data));
        for bit in [0usize, 7, 8 * 4999 + 3, 8 * 9999 + 7] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(!sum.verify(&corrupted), "bit {bit} undetected");
        }
    }

    #[test]
    fn dispersion_over_similar_inputs() {
        // Checksums of near-identical inputs should not collide and
        // should differ in roughly half their bits on average.
        let mut total_bits = 0u32;
        let n = 500u64;
        for i in 0..n {
            let a = Checksum::of(&i.to_le_bytes());
            let b = Checksum::of(&(i + 1).to_le_bytes());
            assert_ne!(a, b);
            total_bits += (a.as_u64() ^ b.as_u64()).count_ones();
        }
        let avg = f64::from(total_bits) / n as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn lanes_do_not_collide_on_shifted_content() {
        // Inputs long enough to exercise the 4-lane path, differing only
        // in which lane a byte lands in, must not collide.
        let base: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let sums: Vec<u64> = (0..32)
            .map(|off| {
                let mut v = base.clone();
                v[off] ^= 0x5a;
                Checksum::of(&v).as_u64()
            })
            .collect();
        for i in 0..sums.len() {
            for j in (i + 1)..sums.len() {
                assert_ne!(sums[i], sums[j], "offsets {i} and {j} collide");
            }
        }
    }

    #[test]
    fn reference_mode_checksums_bit_flips_too() {
        // The reference lane must stay a working checksum (the bench runs
        // whole convergence scenarios under it).
        let _guard = MODE_LOCK.lock().unwrap();
        Checksum::set_reference_mode(true);
        assert!(Checksum::reference_mode());
        let data: Vec<u8> = (0..4096).map(|i| (i % 249) as u8).collect();
        let sum = Checksum::of(&data);
        assert!(sum.verify(&data));
        let mut corrupted = data.clone();
        corrupted[1234] ^= 0x40;
        assert!(!sum.verify(&corrupted));
        Checksum::set_reference_mode(false);
        assert!(!Checksum::reference_mode());
    }

    /// Serializes tests that toggle the process-wide reference mode.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
