//! Codec error type.

use std::error::Error;
use std::fmt;

/// Errors returned by the [`Codec`](crate::Codec).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The `(k, n)` parameters are unusable (`k == 0`, `k > n`, or
    /// `n > 256`, the number of distinct GF(2⁸) evaluation points).
    InvalidParameters {
        /// Requested number of data fragments.
        k: usize,
        /// Requested total number of fragments.
        n: usize,
    },
    /// Fewer than `k` distinct fragments were supplied to a decode.
    NotEnoughFragments {
        /// Distinct fragments available.
        have: usize,
        /// Fragments required (`k`).
        need: usize,
    },
    /// A fragment index is out of the `0..n` range.
    InvalidFragmentIndex {
        /// The offending index.
        index: u8,
        /// Total fragments in the code word (`n`).
        n: usize,
    },
    /// Supplied fragments have inconsistent payload lengths, or a length
    /// that cannot correspond to the stated value length.
    FragmentLengthMismatch {
        /// Expected payload length.
        expected: usize,
        /// Actual payload length found.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidParameters { k, n } => {
                write!(f, "invalid code parameters k={k}, n={n}")
            }
            CodecError::NotEnoughFragments { have, need } => {
                write!(f, "need {need} distinct fragments, have {have}")
            }
            CodecError::InvalidFragmentIndex { index, n } => {
                write!(f, "fragment index {index} outside 0..{n}")
            }
            CodecError::FragmentLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "fragment length {actual} does not match expected {expected}"
                )
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CodecError::InvalidParameters { k: 0, n: 4 };
        assert_eq!(e.to_string(), "invalid code parameters k=0, n=4");
        let e = CodecError::NotEnoughFragments { have: 2, need: 4 };
        assert_eq!(e.to_string(), "need 4 distinct fragments, have 2");
        let e = CodecError::InvalidFragmentIndex { index: 13, n: 12 };
        assert_eq!(e.to_string(), "fragment index 13 outside 0..12");
        let e = CodecError::FragmentLengthMismatch {
            expected: 8,
            actual: 9,
        };
        assert!(e.to_string().contains("does not match"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }
}
