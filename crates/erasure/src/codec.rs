//! The systematic Reed-Solomon codec.
//!
//! The generator matrix is derived from an `n × k` Vandermonde matrix `V`
//! (rows are evaluation points `0..n`): `G = V · (V_top)⁻¹`, where `V_top`
//! is the top `k × k` block. Multiplying by a fixed invertible matrix keeps
//! every `k`-row subset of `G` invertible while turning the top block into
//! the identity — hence *systematic*: fragments `0..k` are the value
//! striped verbatim.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};

use bytes::Bytes;

use crate::error::CodecError;
use crate::fragment::{Fragment, FragmentIndex};
use crate::gf;
use crate::matrix::Matrix;

/// Selects which generation of the codec implementation runs; see
/// [`Codec::set_impl_mode`]. All three produce byte-identical fragments —
/// only the cost differs — so the benchmark baseline can attribute
/// speedups honestly to each generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecImpl {
    /// The seed implementation: per-shard allocations, byte-at-a-time
    /// log/exp arithmetic, a fresh Gaussian elimination per decode.
    Reference,
    /// Flat 256-entry multiplication tables with word-wide accumulation
    /// and the decode-matrix inversion cache, one parity row at a time.
    FlatTable,
    /// Everything in `FlatTable`, plus the packed-parity encode kernel:
    /// one table lookup per data byte yields all `n - k` parity products
    /// at once (byte lanes of a `u64`), de-interleaved by an in-register
    /// 8×8 byte transpose. Applies when `1 <= n - k <= 8`; other shapes
    /// fall back to `FlatTable` behavior, as does any CPU where
    /// [`gf::simd_active`] reports the split-nibble shuffle kernel — there,
    /// row-at-a-time `mul_acc` over long contiguous rows beats the
    /// position-major gather. This is the default.
    Packed,
}

/// Process-wide codec implementation selector; see
/// [`Codec::set_impl_mode`].
static IMPL_MODE: AtomicU8 = AtomicU8::new(IMPL_PACKED);

const IMPL_REFERENCE: u8 = 0;
const IMPL_FLAT_TABLE: u8 = 1;
const IMPL_PACKED: u8 = 2;

/// Upper bound on cached decode-matrix inversions per codec.
///
/// A convergence run decodes the same few surviving subsets over and over
/// (the paper's steady state), so a small bound captures essentially all
/// hits; it exists only to keep adversarial access patterns from growing
/// the cache without limit.
const INVERSION_CACHE_CAP: usize = 64;

/// Bounded cache of decode-matrix inversions, keyed by the sorted set of
/// surviving fragment indices used as decode rows.
///
/// Eviction is deterministic FIFO: each entry records the monotone tick at
/// which it was inserted and the oldest entry is dropped when the cache is
/// full. Cached inverses are exactly the matrices Gaussian elimination
/// would produce, so hits are byte-identical to cold decodes and replay
/// digests are unaffected.
#[derive(Debug, Clone, Default)]
struct InversionCache {
    entries: BTreeMap<Vec<u8>, (u64, Matrix)>,
    tick: u64,
}

impl InversionCache {
    fn get(&self, key: &[u8]) -> Option<&Matrix> {
        self.entries.get(key).map(|(_, m)| m)
    }

    fn insert(&mut self, key: Vec<u8>, inv: Matrix) {
        if self.entries.len() >= INVERSION_CACHE_CAP {
            // Evict the oldest insertion (deterministic: ticks are unique).
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        let tick = self.tick;
        self.tick += 1;
        self.entries.insert(key, (tick, inv));
    }
}

/// A systematic Reed-Solomon `(k, n)` erasure codec over GF(2⁸).
///
/// `k` is the number of data fragments, `n` the total number of fragments;
/// any `k` distinct fragments recover the value. The generator matrix is
/// computed once at construction; encode/decode are then pure table-driven
/// byte loops.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), erasure::CodecError> {
/// let codec = erasure::Codec::new(4, 12)?;
/// let frags = codec.encode(b"hello, archive");
/// let back = codec.decode(&frags[4..8], 14)?; // four parity fragments
/// assert_eq!(back, b"hello, archive");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Codec {
    k: usize,
    n: usize,
    generator: Matrix,
    // Per-data-row packed parity tables: `packed[d][b]` holds the products
    // `gen[k+p][d] · b` for every parity row `p`, one per byte lane of the
    // `u64`. Empty when the shape has no parity or more than 8 parity rows.
    packed: Vec<[u64; 256]>,
    // Interior mutability so `decode`/`recover` stay `&self`; the codec
    // lives inside single-threaded simulation actors, which never needed
    // `Sync`. `Send` is preserved (no `Rc` inside).
    inversions: RefCell<InversionCache>,
    // Scratch for the packed encode kernel (position-major packed parity
    // words), reused across calls so the hot path allocates nothing.
    inter: RefCell<Vec<u64>>,
    // Scratch for the delta encode path (the k·w dirty-column buffer),
    // reused across calls like `inter`.
    dirty: RefCell<Vec<u8>>,
}

impl Codec {
    /// Creates a `(k, n)` codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameters`] unless `0 < k <= n <= 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodecError> {
        if k == 0 || k > n || n > 256 {
            return Err(CodecError::InvalidParameters { k, n });
        }
        let vandermonde = Matrix::vandermonde(n, k);
        let top = vandermonde.submatrix(k, k);
        let top_inv = top
            .inverse()
            .expect("top block of a Vandermonde matrix is invertible");
        let generator = vandermonde.mul(&top_inv);
        debug_assert!(generator.submatrix(k, k).is_identity());
        let packed = if (1..=8).contains(&(n - k)) {
            (0..k)
                .map(|d| {
                    let mut t = [0u64; 256];
                    for (b, e) in t.iter_mut().enumerate() {
                        let mut w = 0u64;
                        for p in 0..(n - k) {
                            w |= u64::from(gf::mul_row(generator.get(k + p, d))[b]) << (8 * p);
                        }
                        *e = w;
                    }
                    t
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Codec {
            k,
            n,
            generator,
            packed,
            inversions: RefCell::new(InversionCache::default()),
            inter: RefCell::new(Vec::new()),
            dirty: RefCell::new(Vec::new()),
        })
    }

    /// Number of data fragments (`k`).
    pub fn data_fragments(&self) -> usize {
        self.k
    }

    /// Total number of fragments (`n`).
    pub fn total_fragments(&self) -> usize {
        self.n
    }

    /// Number of parity fragments (`n - k`).
    pub fn parity_fragments(&self) -> usize {
        self.n - self.k
    }

    /// Payload length of each fragment for a value of `value_len` bytes:
    /// `ceil(value_len / k)`.
    pub fn fragment_len(&self, value_len: usize) -> usize {
        value_len.div_ceil(self.k)
    }

    /// Encodes `value` into all `n` fragments (data fragments first).
    ///
    /// The value is zero-padded up to `k * fragment_len`; the original
    /// length must be carried out-of-band (Pahoehoe keeps it in metadata)
    /// and passed back to [`decode`](Self::decode).
    pub fn encode(&self, value: &[u8]) -> Vec<Fragment> {
        let mut frags = Vec::with_capacity(self.n);
        self.encode_into(value, &mut frags);
        frags
    }

    /// Like [`encode`](Self::encode), but reuses `out` for the fragment
    /// list (cleared first) so per-operation callers keep one `Vec` alive
    /// instead of allocating a fresh one per protocol step.
    ///
    /// The whole stripe — data and parity — lives in a single allocation:
    /// the value is striped into an `n * fragment_len` buffer, parity is
    /// computed in place, and the buffer is frozen into one refcounted
    /// [`Bytes`] that every fragment holds a zero-copy window of.
    // lint:hot
    pub fn encode_into(&self, value: &[u8], out: &mut Vec<Fragment>) {
        out.clear();
        let mode = Self::impl_mode();
        if mode == CodecImpl::Reference {
            self.encode_reference_into(value, out);
            return;
        }
        let flen = self.fragment_len(value.len());
        // Copy the value in, then zero-extend: only the padding and the
        // parity region get zeroed, not the bytes we just wrote.
        let mut stripe = Vec::with_capacity(self.n * flen);
        stripe.extend_from_slice(value);
        stripe.resize(self.n * flen, 0);
        let (data, parity) = stripe.split_at_mut(self.k * flen);
        // The packed position-major gather wins for the scalar table
        // kernel; when the SIMD shuffle kernel is active, row-at-a-time
        // `mul_acc` over long contiguous rows is faster still.
        if mode == CodecImpl::Packed && !self.packed.is_empty() && flen > 0 && !gf::simd_active() {
            let rows: Vec<&[u8]> = data.chunks_exact(flen).collect();
            self.encode_parity_packed(&rows, parity, flen);
        } else {
            for row in self.k..self.n {
                let seg = &mut parity[(row - self.k) * flen..(row - self.k + 1) * flen];
                for i in 0..self.k {
                    gf::mul_acc(
                        seg,
                        &data[i * flen..(i + 1) * flen],
                        self.generator.get(row, i),
                    );
                }
            }
        }
        let backing = Bytes::from(stripe);
        out.reserve(self.n);
        for i in 0..self.n {
            out.push(Fragment::new(
                i as FragmentIndex,
                backing.slice(i * flen..(i + 1) * flen),
            ));
        }
    }

    /// Encodes a refcounted value without copying its payload: the data
    /// fragments are zero-copy windows of `value` (only a padded tail row
    /// is materialized, when `value.len()` is not a multiple of the
    /// fragment length), and the parity rows are computed into one shared
    /// backing allocation. Byte-identical to [`encode`](Self::encode) —
    /// this is the put-path fast lane; it always runs the fastest
    /// available kernel and ignores [`set_impl_mode`](Self::set_impl_mode)
    /// (reference benchmarking goes through [`encode`](Self::encode)).
    // lint:hot
    pub fn encode_value(&self, value: &Bytes, out: &mut Vec<Fragment>) {
        out.clear();
        let flen = self.fragment_len(value.len());
        // Data rows: windows of the value where a full row fits, one
        // padded copy per tail row (at most one for non-degenerate
        // shapes; short values may owe several all-zero rows).
        let mut rows: Vec<Bytes> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let start = i * flen;
            let end = start + flen;
            if end <= value.len() {
                rows.push(value.slice(start..end));
            } else {
                let mut pad = Vec::with_capacity(flen);
                pad.extend_from_slice(&value[start.min(value.len())..]);
                pad.resize(flen, 0);
                rows.push(Bytes::from(pad));
            }
        }
        let pk = self.n - self.k;
        out.reserve(self.n);
        if pk > 0 && flen > 0 {
            let mut parity = vec![0u8; pk * flen];
            let row_slices: Vec<&[u8]> = rows.iter().map(|r| r.as_ref()).collect();
            if self.packed.is_empty() || gf::simd_active() {
                for p in 0..pk {
                    let seg = &mut parity[p * flen..(p + 1) * flen];
                    for (i, row) in row_slices.iter().enumerate() {
                        gf::mul_acc(seg, row, self.generator.get(self.k + p, i));
                    }
                }
            } else {
                self.encode_parity_packed(&row_slices, &mut parity, flen);
            }
            let backing = Bytes::from(parity);
            for (i, row) in rows.into_iter().enumerate() {
                out.push(Fragment::new(i as FragmentIndex, row));
            }
            for p in 0..pk {
                out.push(Fragment::new(
                    (self.k + p) as FragmentIndex,
                    backing.slice(p * flen..(p + 1) * flen),
                ));
            }
        } else {
            for (i, row) in rows.into_iter().enumerate() {
                out.push(Fragment::new(i as FragmentIndex, row));
            }
            for p in 0..pk {
                out.push(Fragment::new((self.k + p) as FragmentIndex, Bytes::new()));
            }
        }
    }

    /// The dirty column window of an overwrite: the smallest `(start, w)`
    /// such that for every code-word row, `old` and `new` agree outside
    /// columns `start..start + w`. Both values must have the same length
    /// (delta coding falls back to a full encode on length change).
    /// Returns `(0, 0)` when the values are byte-identical.
    ///
    /// Columns are independent under the code: data fragment `i` is row
    /// `i` of the striped value, and parity column `j` is a linear
    /// combination of the data bytes in column `j` only. So the XOR of the
    /// encodings of `old` and `new` is zero outside this window in every
    /// fragment, data and parity alike.
    pub fn delta_window(&self, old: &[u8], new: &[u8]) -> (usize, usize) {
        assert_eq!(old.len(), new.len(), "delta coding requires equal lengths");
        let flen = self.fragment_len(new.len());
        let mut lo = flen;
        let mut hi = 0usize;
        for row_start in (0..new.len()).step_by(flen.max(1)) {
            let row_end = (row_start + flen).min(new.len());
            let o = &old[row_start..row_end];
            let n = &new[row_start..row_end];
            let Some(first) = o.iter().zip(n).position(|(a, b)| a != b) else {
                continue;
            };
            let last = o
                .iter()
                .zip(n)
                .rposition(|(a, b)| a != b)
                .expect("a first diff implies a last diff");
            lo = lo.min(first);
            hi = hi.max(last + 1);
        }
        if lo >= hi {
            (0, 0)
        } else {
            (lo, hi - lo)
        }
    }

    /// Encodes the overwrite `old -> new` as `n` windowed delta fragments:
    /// fragment `i` carries the dirty-column window of
    /// `encode(new)[i] XOR encode(old)[i]`, tagged with the window start
    /// and the full fragment length (see [`Fragment::new_delta`]).
    ///
    /// By linearity the XOR of the two encodings equals the encoding of
    /// `old XOR new`, and the XOR is zero outside the dirty window in
    /// every fragment, so only the `k·w` dirty buffer is encoded — through
    /// the unchanged kernels, since `fragment_len(k·w) = w` exactly.
    /// Returns the `(start, w)` window; `w == 0` means the values are
    /// identical and every delta payload is empty.
    ///
    /// Both values must have the same length; callers fall back to a full
    /// encode on length change.
    // lint:hot
    pub fn encode_delta_into(
        &self,
        old: &[u8],
        new: &[u8],
        out: &mut Vec<Fragment>,
    ) -> (usize, usize) {
        let (start, w) = self.delta_window(old, new);
        let flen = self.fragment_len(new.len());
        out.clear();
        if w == 0 {
            out.reserve(self.n);
            for i in 0..self.n {
                out.push(Fragment::new_delta(
                    i as FragmentIndex,
                    Bytes::new(),
                    0,
                    flen as u32,
                ));
            }
            return (0, 0);
        }
        let mut dirty = self.dirty.borrow_mut();
        dirty.clear();
        dirty.resize(self.k * w, 0);
        for i in 0..self.k {
            let row_start = i * flen;
            let row_len = new.len().saturating_sub(row_start).min(flen);
            let lo = start.min(row_len);
            let hi = (start + w).min(row_len);
            for j in lo..hi {
                dirty[i * w + (j - start)] = old[row_start + j] ^ new[row_start + j];
            }
        }
        self.encode_into(&dirty, out);
        for f in out.iter_mut() {
            *f = Fragment::new_delta(f.index(), f.data().clone(), start as u32, flen as u32);
        }
        (start, w)
    }

    /// Fills the `(n - k) * flen` parity region from the `k * flen` data
    /// region using the packed tables: one lookup per data byte produces
    /// the products for **all** parity rows at once (byte lanes of a
    /// `u64`), XOR-accumulated position-major, then de-interleaved into
    /// row-major parity by an in-register 8×8 byte transpose.
    ///
    /// Byte-identical to the row-at-a-time [`gf::mul_acc`] loop: the lanes
    /// are the same GF(2⁸) products, and XOR never crosses lanes.
    // lint:hot
    fn encode_parity_packed(&self, rows: &[&[u8]], parity: &mut [u8], flen: usize) {
        let pk = self.n - self.k;
        let mut inter = self.inter.borrow_mut();
        if inter.len() != flen {
            inter.clear();
            inter.resize(flen, 0);
        }
        if self.k == 4 {
            // The paper's default policy (k=4, n=12) gets a fully unrolled
            // gather: four loads, four lookups, three XORs per position.
            // Every packed word is overwritten, so stale scratch from a
            // previous call needs no re-zeroing.
            let (t0, t1, t2, t3) = (
                &self.packed[0],
                &self.packed[1],
                &self.packed[2],
                &self.packed[3],
            );
            let (d0, d1, d2, d3) = (rows[0], rows[1], rows[2], rows[3]);
            for (j, w) in inter.iter_mut().enumerate() {
                *w = t0[d0[j] as usize]
                    ^ t1[d1[j] as usize]
                    ^ t2[d2[j] as usize]
                    ^ t3[d3[j] as usize];
            }
        } else {
            // The generic gather accumulates, so the scratch must start
            // zeroed.
            inter.fill(0);
            for (i, t) in self.packed.iter().enumerate() {
                let d = rows[i];
                for (w, &b) in inter.iter_mut().zip(d) {
                    *w ^= t[b as usize];
                }
            }
        }
        // Scatter: transpose each 8-position block of packed words into 8
        // contiguous bytes per parity row. Lanes `pk..8` are zero and are
        // simply not written.
        let nb = flen / 8;
        for blk in 0..nb {
            let mut w = [0u64; 8];
            w.copy_from_slice(&inter[blk * 8..blk * 8 + 8]);
            transpose8x8(&mut w);
            for (p, lane) in w.iter().enumerate().take(pk) {
                parity[p * flen + blk * 8..p * flen + blk * 8 + 8]
                    .copy_from_slice(&lane.to_le_bytes());
            }
        }
        for j in nb * 8..flen {
            let w = inter[j];
            for p in 0..pk {
                parity[p * flen + j] = (w >> (8 * p)) as u8;
            }
        }
    }

    /// Decodes the original `value_len`-byte value from any `k` distinct
    /// fragments (duplicates are ignored).
    ///
    /// # Errors
    ///
    /// * [`CodecError::NotEnoughFragments`] — fewer than `k` distinct
    ///   indices supplied.
    /// * [`CodecError::InvalidFragmentIndex`] — an index is `>= n`.
    /// * [`CodecError::FragmentLengthMismatch`] — a payload length differs
    ///   from `fragment_len(value_len)`.
    pub fn decode(&self, fragments: &[Fragment], value_len: usize) -> Result<Vec<u8>, CodecError> {
        let mut value = Vec::new();
        self.decode_into(fragments, value_len, &mut value)?;
        Ok(value)
    }

    /// Like [`decode`](Self::decode), but writes the value into `out`
    /// (cleared first), reusing its capacity across calls. The decode rows
    /// are applied directly to `out`'s segments — no intermediate shard
    /// `Vec`s.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decode`](Self::decode); on error `out`'s
    /// contents are unspecified (but it remains valid to reuse).
    pub fn decode_into(
        &self,
        fragments: &[Fragment],
        value_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let picked = self.pick_fragments(fragments, value_len)?;
        let flen = self.fragment_len(value_len);
        out.clear();
        if Self::reference_mode() {
            for shard in self.data_shards_reference(&picked, flen) {
                out.extend_from_slice(&shard);
            }
            out.truncate(value_len);
            return Ok(());
        }
        out.resize(self.k * flen, 0);
        self.reconstruct_into(&picked, flen, out);
        out.truncate(value_len);
        Ok(())
    }

    /// Regenerates the fragments with indices `missing` from any `k`
    /// distinct fragments.
    ///
    /// This is the primitive behind the paper's *sibling fragment recovery*
    /// optimization: one retrieval of `k` fragments amortizes over
    /// regenerating **all** missing sibling fragments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decode`](Self::decode), plus
    /// [`CodecError::InvalidFragmentIndex`] if a requested index is `>= n`.
    pub fn recover(
        &self,
        fragments: &[Fragment],
        missing: &[FragmentIndex],
        value_len: usize,
    ) -> Result<Vec<Fragment>, CodecError> {
        let mut out = Vec::with_capacity(missing.len());
        self.recover_into(fragments, missing, value_len, &mut out)?;
        Ok(out)
    }

    /// Like [`recover`](Self::recover), but reuses `out` for the fragment
    /// list (cleared first). All regenerated fragments share one backing
    /// allocation, like [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Same conditions as [`recover`](Self::recover).
    // lint:hot
    pub fn recover_into(
        &self,
        fragments: &[Fragment],
        missing: &[FragmentIndex],
        value_len: usize,
        out: &mut Vec<Fragment>,
    ) -> Result<(), CodecError> {
        out.clear();
        for &m in missing {
            if (m as usize) >= self.n {
                return Err(CodecError::InvalidFragmentIndex {
                    index: m,
                    n: self.n,
                });
            }
        }
        let picked = self.pick_fragments(fragments, value_len)?;
        let flen = self.fragment_len(value_len);

        if Self::reference_mode() {
            let shards = self.data_shards_reference(&picked, flen);
            for &m in missing {
                let row = m as usize;
                let mut shard = vec![0u8; flen];
                for (i, data) in shards.iter().enumerate() {
                    gf::mul_acc_ref(&mut shard, data, self.generator.get(row, i));
                }
                out.push(Fragment::new(m, shard));
            }
            return Ok(());
        }

        let mut data = vec![0u8; self.k * flen];
        self.reconstruct_into(&picked, flen, &mut data);

        let mut buf = vec![0u8; missing.len() * flen];
        for (j, &m) in missing.iter().enumerate() {
            let row = m as usize;
            let seg = &mut buf[j * flen..(j + 1) * flen];
            for i in 0..self.k {
                gf::mul_acc(
                    seg,
                    &data[i * flen..(i + 1) * flen],
                    self.generator.get(row, i),
                );
            }
        }
        let backing = Bytes::from(buf);
        out.reserve(missing.len());
        for (j, &m) in missing.iter().enumerate() {
            out.push(Fragment::new(m, backing.slice(j * flen..(j + 1) * flen)));
        }
        Ok(())
    }

    /// Validates and deduplicates `fragments`, returning the `k` fragments
    /// that will serve as decode rows, in ascending index order.
    fn pick_fragments<'a>(
        &self,
        fragments: &'a [Fragment],
        value_len: usize,
    ) -> Result<Vec<&'a Fragment>, CodecError> {
        let flen = self.fragment_len(value_len);

        // Deduplicate by index, validating as we go.
        let mut chosen: Vec<Option<&Fragment>> = vec![None; self.n];
        let mut distinct = 0usize;
        for f in fragments {
            let idx = f.index() as usize;
            if idx >= self.n {
                return Err(CodecError::InvalidFragmentIndex {
                    index: f.index(),
                    n: self.n,
                });
            }
            if f.len() != flen {
                return Err(CodecError::FragmentLengthMismatch {
                    expected: flen,
                    actual: f.len(),
                });
            }
            if chosen[idx].is_none() {
                chosen[idx] = Some(f);
                distinct += 1;
                if distinct == self.k {
                    break;
                }
            }
        }
        if distinct < self.k {
            return Err(CodecError::NotEnoughFragments {
                have: distinct,
                need: self.k,
            });
        }
        Ok(chosen.into_iter().flatten().take(self.k).collect())
    }

    /// Reconstructs the `k` padded data shards from `picked` (ascending
    /// index order, as produced by
    /// [`pick_fragments`](Self::pick_fragments)) into `out`, which must be
    /// `k * flen` zeroed bytes; shard `i` lands at `out[i*flen..(i+1)*flen]`.
    // lint:hot
    fn reconstruct_into(&self, picked: &[&Fragment], flen: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.k * flen);

        // Fast path: all k data fragments present — no algebra needed.
        if picked
            .iter()
            .enumerate()
            .all(|(i, f)| f.index() as usize == i)
        {
            for (i, f) in picked.iter().enumerate() {
                out[i * flen..(i + 1) * flen].copy_from_slice(f.data());
            }
            return;
        }

        let inv = self.decode_matrix(picked);
        for r in 0..self.k {
            let seg = &mut out[r * flen..(r + 1) * flen];
            for (c, frag) in picked.iter().enumerate() {
                gf::mul_acc(seg, frag.data(), inv.get(r, c));
            }
        }
    }

    /// Returns the inverse of the generator rows selected by `picked`,
    /// consulting the [`InversionCache`] first.
    ///
    /// `picked` is in ascending index order, so the cache key is the
    /// sorted surviving-index set directly. A hit clones the cached
    /// `k × k` matrix (at most 256 bytes for the paper's shapes) instead
    /// of re-running Gaussian elimination.
    fn decode_matrix(&self, picked: &[&Fragment]) -> Matrix {
        let key: Vec<u8> = picked.iter().map(|f| f.index()).collect();
        if let Some(inv) = self.inversions.borrow().get(&key) {
            return inv.clone();
        }
        let rows: Vec<usize> = key.iter().map(|&i| i as usize).collect();
        let inv = self
            .generator
            .select_rows(&rows)
            .inverse()
            .expect("any k rows of the systematic generator are independent");
        self.inversions.borrow_mut().insert(key, inv.clone());
        inv
    }

    /// Number of decode-matrix inversions currently cached (for tests and
    /// diagnostics).
    pub fn cached_inversions(&self) -> usize {
        self.inversions.borrow().entries.len()
    }

    // ---- implementation-generation switch (benchmark baselines) ----

    /// Selects which implementation generation every codec in the process
    /// runs. Output bytes are identical in all modes — only the cost
    /// changes — so this exists solely for the recorded benchmark baseline
    /// (`cargo run -p bench --release --bin baseline`) to measure honest
    /// before/after numbers through the full protocol stack, one
    /// generation at a time. Not for production use.
    pub fn set_impl_mode(mode: CodecImpl) {
        let v = match mode {
            CodecImpl::Reference => IMPL_REFERENCE,
            CodecImpl::FlatTable => IMPL_FLAT_TABLE,
            CodecImpl::Packed => IMPL_PACKED,
        };
        IMPL_MODE.store(v, Ordering::Relaxed);
    }

    /// The current process-wide [`CodecImpl`] selection.
    pub fn impl_mode() -> CodecImpl {
        match IMPL_MODE.load(Ordering::Relaxed) {
            IMPL_REFERENCE => CodecImpl::Reference,
            IMPL_FLAT_TABLE => CodecImpl::FlatTable,
            _ => CodecImpl::Packed,
        }
    }

    /// Switches every codec in the process to the pre-optimization
    /// reference implementation: log/exp [`gf::mul_acc_ref`] arithmetic,
    /// per-shard allocations, and a fresh Gaussian elimination per decode
    /// (no inversion cache). Shorthand for
    /// [`set_impl_mode`](Self::set_impl_mode) with
    /// [`CodecImpl::Reference`] (on) or [`CodecImpl::Packed`] (off).
    pub fn set_reference_mode(enabled: bool) {
        Self::set_impl_mode(if enabled {
            CodecImpl::Reference
        } else {
            CodecImpl::Packed
        });
    }

    /// Whether [`set_reference_mode`](Self::set_reference_mode) is on.
    pub fn reference_mode() -> bool {
        Self::impl_mode() == CodecImpl::Reference
    }

    /// The seed implementation of `encode`, kept verbatim as the
    /// benchmark's "before": per-shard `Vec` → `Bytes` copies and
    /// byte-at-a-time log/exp parity accumulation.
    fn encode_reference_into(&self, value: &[u8], out: &mut Vec<Fragment>) {
        let flen = self.fragment_len(value.len());
        let mut data_shards: Vec<Bytes> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let start = (i * flen).min(value.len());
            let end = ((i + 1) * flen).min(value.len());
            let mut shard = Vec::with_capacity(flen);
            shard.extend_from_slice(&value[start..end]);
            shard.resize(flen, 0);
            data_shards.push(Bytes::from(shard));
        }
        for (i, shard) in data_shards.iter().enumerate() {
            out.push(Fragment::new(i as FragmentIndex, shard.clone()));
        }
        for row in self.k..self.n {
            let mut parity = vec![0u8; flen];
            for (i, shard) in data_shards.iter().enumerate() {
                gf::mul_acc_ref(&mut parity, shard, self.generator.get(row, i));
            }
            out.push(Fragment::new(row as FragmentIndex, parity));
        }
    }

    /// The seed implementation of data-shard reconstruction: fresh shard
    /// `Vec`s, a Gaussian elimination per call, log/exp arithmetic.
    fn data_shards_reference(&self, picked: &[&Fragment], flen: usize) -> Vec<Vec<u8>> {
        if picked
            .iter()
            .enumerate()
            .all(|(i, f)| f.index() as usize == i)
        {
            return picked.iter().map(|f| f.data().to_vec()).collect();
        }
        let rows: Vec<usize> = picked.iter().map(|f| f.index() as usize).collect();
        let inv = self
            .generator
            .select_rows(&rows)
            .inverse()
            .expect("any k rows of the systematic generator are independent");
        let mut shards = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut shard = vec![0u8; flen];
            for (c, frag) in picked.iter().enumerate() {
                gf::mul_acc_ref(&mut shard, frag.data(), inv.get(r, c));
            }
            shards.push(shard);
        }
        shards
    }
}

/// Transposes an 8×8 byte matrix held in eight `u64`s (word `i` = row `i`,
/// byte lane `j` = column `j`) in place, using the classic three-stage
/// SWAR butterfly: swap 1×1 blocks across the diagonal of each 2×2 block,
/// then 2×2 blocks within 4×4, then 4×4 halves.
#[inline]
fn transpose8x8(w: &mut [u64; 8]) {
    const M0: u64 = 0x00ff_00ff_00ff_00ff;
    const M1: u64 = 0x0000_ffff_0000_ffff;
    const M2: u64 = 0x0000_0000_ffff_ffff;
    for i in (0..8).step_by(2) {
        let (a, b) = (w[i], w[i + 1]);
        w[i] = (a & M0) | ((b & M0) << 8);
        w[i + 1] = ((a >> 8) & M0) | (b & !M0);
    }
    for i in [0usize, 1, 4, 5] {
        let (a, b) = (w[i], w[i + 2]);
        w[i] = (a & M1) | ((b & M1) << 16);
        w[i + 2] = ((a >> 16) & M1) | (b & !M1);
    }
    for i in 0..4 {
        let (a, b) = (w[i], w[i + 4]);
        w[i] = (a & M2) | ((b & M2) << 32);
        w[i + 4] = ((a >> 32) & M2) | (b & !M2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn parameters_validated() {
        assert!(Codec::new(4, 12).is_ok());
        assert!(Codec::new(1, 1).is_ok());
        assert!(Codec::new(256, 256).is_ok());
        assert_eq!(
            Codec::new(0, 4).unwrap_err(),
            CodecError::InvalidParameters { k: 0, n: 4 }
        );
        assert!(Codec::new(5, 4).is_err());
        assert!(Codec::new(4, 257).is_err());
    }

    #[test]
    fn accessors() {
        let c = Codec::new(4, 12).unwrap();
        assert_eq!(c.data_fragments(), 4);
        assert_eq!(c.total_fragments(), 12);
        assert_eq!(c.parity_fragments(), 8);
        assert_eq!(c.fragment_len(100), 25);
        assert_eq!(c.fragment_len(101), 26);
        assert_eq!(c.fragment_len(0), 0);
    }

    #[test]
    fn systematic_property() {
        // The first k fragments are the value striped verbatim.
        let c = Codec::new(4, 12).unwrap();
        let v = value(100);
        let frags = c.encode(&v);
        for i in 0..4 {
            assert_eq!(&frags[i].data()[..], &v[i * 25..(i + 1) * 25]);
        }
    }

    #[test]
    fn roundtrip_with_data_fragments() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(1000);
        let frags = c.encode(&v);
        assert_eq!(c.decode(&frags[..4], v.len()).unwrap(), v);
    }

    #[test]
    fn roundtrip_with_any_k_subset() {
        let c = Codec::new(3, 6).unwrap();
        let v = value(77);
        let frags = c.encode(&v);
        // Exhaustively test every 3-subset of 6 fragments.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for d in (b + 1)..6 {
                    let subset = vec![frags[a].clone(), frags[b].clone(), frags[d].clone()];
                    assert_eq!(c.decode(&subset, v.len()).unwrap(), v, "subset {a},{b},{d}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_value_not_divisible_by_k() {
        let c = Codec::new(4, 8).unwrap();
        for len in [1usize, 2, 3, 5, 97, 102_401] {
            let v = value(len);
            let frags = c.encode(&v);
            assert_eq!(c.decode(&frags[4..], len).unwrap(), v, "len={len}");
        }
    }

    #[test]
    fn roundtrip_empty_value() {
        let c = Codec::new(4, 12).unwrap();
        let frags = c.encode(b"");
        assert_eq!(frags.len(), 12);
        assert!(frags.iter().all(Fragment::is_empty));
        assert_eq!(c.decode(&frags[5..9], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn k_equals_one_is_replication() {
        let c = Codec::new(1, 3).unwrap();
        let v = value(10);
        let frags = c.encode(&v);
        for f in &frags {
            assert_eq!(&f.data()[..], &v[..], "every fragment is a replica");
        }
    }

    #[test]
    fn k_equals_n_has_no_parity() {
        let c = Codec::new(4, 4).unwrap();
        let v = value(64);
        let frags = c.encode(&v);
        assert_eq!(frags.len(), 4);
        assert_eq!(c.decode(&frags, v.len()).unwrap(), v);
    }

    #[test]
    fn duplicates_are_ignored() {
        let c = Codec::new(3, 6).unwrap();
        let v = value(30);
        let frags = c.encode(&v);
        let with_dups = vec![
            frags[5].clone(),
            frags[5].clone(),
            frags[1].clone(),
            frags[1].clone(),
            frags[3].clone(),
        ];
        assert_eq!(c.decode(&with_dups, v.len()).unwrap(), v);
    }

    #[test]
    fn not_enough_fragments_is_an_error() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(40);
        let frags = c.encode(&v);
        let err = c.decode(&frags[..3], v.len()).unwrap_err();
        assert_eq!(err, CodecError::NotEnoughFragments { have: 3, need: 4 });
        // Duplicates do not count toward k.
        let dup = vec![frags[0].clone(); 4];
        assert_eq!(
            c.decode(&dup, v.len()).unwrap_err(),
            CodecError::NotEnoughFragments { have: 1, need: 4 }
        );
    }

    #[test]
    fn invalid_index_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let bogus = Fragment::new(9, vec![0u8; 5]);
        let err = c.decode(&[bogus], 10).unwrap_err();
        assert_eq!(err, CodecError::InvalidFragmentIndex { index: 9, n: 4 });
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let v = value(10);
        let mut frags = c.encode(&v);
        frags[1] = Fragment::new(1, vec![0u8; 3]);
        let err = c.decode(&frags, v.len()).unwrap_err();
        assert_eq!(
            err,
            CodecError::FragmentLengthMismatch {
                expected: 5,
                actual: 3
            }
        );
    }

    #[test]
    fn recover_regenerates_exact_fragments() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(100 * 1024);
        let frags = c.encode(&v);
        // Pretend fragments 2, 7, 11 were lost; recover from 4 others.
        let survivors = vec![
            frags[0].clone(),
            frags[5].clone(),
            frags[8].clone(),
            frags[3].clone(),
        ];
        let recovered = c.recover(&survivors, &[2, 7, 11], v.len()).unwrap();
        assert_eq!(recovered.len(), 3);
        for r in &recovered {
            assert_eq!(r, &frags[r.index() as usize]);
        }
    }

    #[test]
    fn recover_all_missing_from_k() {
        // Recover every fragment (even present ones) — must equal encode.
        let c = Codec::new(3, 6).unwrap();
        let v = value(42);
        let frags = c.encode(&v);
        let all: Vec<FragmentIndex> = (0..6).collect();
        let re = c.recover(&frags[3..6], &all, v.len()).unwrap();
        assert_eq!(re, frags);
    }

    #[test]
    fn recover_invalid_target_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let v = value(8);
        let frags = c.encode(&v);
        let err = c.recover(&frags[..2], &[4], v.len()).unwrap_err();
        assert_eq!(err, CodecError::InvalidFragmentIndex { index: 4, n: 4 });
    }

    /// Serializes the tests that read or write the process-wide reference
    /// mode, so parallel test threads cannot observe each other's toggles.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn reference_mode_is_byte_identical() {
        let _guard = MODE_LOCK.lock().unwrap();
        let c = Codec::new(4, 12).unwrap();
        let v = value(777);
        let frags = c.encode(&v);
        let subset = [
            frags[2].clone(),
            frags[5].clone(),
            frags[7].clone(),
            frags[11].clone(),
        ];

        Codec::set_reference_mode(true);
        assert!(Codec::reference_mode());
        let ref_frags = c.encode(&v);
        let ref_decoded = c.decode(&subset, v.len()).unwrap();
        let ref_recovered = c.recover(&subset, &[0, 3, 10], v.len()).unwrap();
        Codec::set_reference_mode(false);

        assert_eq!(ref_frags, frags, "encode agrees across modes");
        assert_eq!(ref_decoded, v, "decode agrees across modes");
        assert_eq!(
            ref_recovered,
            c.recover(&subset, &[0, 3, 10], v.len()).unwrap(),
            "recover agrees across modes"
        );
    }

    #[test]
    fn transpose8x8_is_a_transpose() {
        let mut w = [0u64; 8];
        for (r, word) in w.iter_mut().enumerate() {
            for c in 0..8 {
                *word |= ((r * 8 + c) as u64) << (8 * c);
            }
        }
        transpose8x8(&mut w);
        for (r, word) in w.iter().enumerate() {
            for c in 0..8 {
                assert_eq!((word >> (8 * c)) as u8, (c * 8 + r) as u8, "({r},{c})");
            }
        }
    }

    #[test]
    fn packed_encode_matches_flat_table_across_shapes() {
        let _guard = MODE_LOCK.lock().unwrap();
        // Shapes straddle the packed-kernel applicability boundary (it
        // needs 1..=8 parity rows; (4,4) has none and (2,12) has ten) and
        // lengths cover empty, sub-block, odd-tail, and exact multiples
        // of the 8-byte transpose block.
        for (k, n) in [(4, 12), (16, 19), (1, 3), (2, 10), (3, 6), (4, 4), (2, 12)] {
            let c = Codec::new(k, n).unwrap();
            for len in [0usize, 1, 5, 7, 8, 9, 63, 64, 65, 1000, 4096] {
                let v = value(len);
                Codec::set_impl_mode(CodecImpl::FlatTable);
                let flat = c.encode(&v);
                Codec::set_impl_mode(CodecImpl::Packed);
                let packed = c.encode(&v);
                assert_eq!(flat, packed, "k={k} n={n} len={len}");
            }
        }
        Codec::set_impl_mode(CodecImpl::Packed);
    }

    #[test]
    fn impl_mode_round_trips() {
        let _guard = MODE_LOCK.lock().unwrap();
        for mode in [
            CodecImpl::Reference,
            CodecImpl::FlatTable,
            CodecImpl::Packed,
        ] {
            Codec::set_impl_mode(mode);
            assert_eq!(Codec::impl_mode(), mode);
        }
        Codec::set_reference_mode(true);
        assert_eq!(Codec::impl_mode(), CodecImpl::Reference);
        Codec::set_reference_mode(false);
        assert_eq!(Codec::impl_mode(), CodecImpl::Packed);
    }

    #[test]
    fn encode_fragments_share_one_backing_allocation() {
        let _guard = MODE_LOCK.lock().unwrap();
        let c = Codec::new(4, 12).unwrap();
        let v = value(100);
        let frags = c.encode(&v);
        let base = frags[0].data().as_ref().as_ptr();
        let flen = c.fragment_len(v.len());
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(
                f.data().as_ref().as_ptr(),
                base.wrapping_add(i * flen),
                "fragment {i} is a window of the stripe"
            );
        }
    }

    #[test]
    fn encode_value_matches_encode() {
        let _guard = MODE_LOCK.lock().unwrap();
        // Shapes cover the packed kernel (k=4 unrolled and generic), the
        // flat fallback (no packed tables when parity > 8 rows), no-parity
        // codes, and tail/padding edge lengths including empty.
        for (k, n) in [(4, 12), (3, 6), (2, 10), (4, 4), (2, 12), (16, 19)] {
            let c = Codec::new(k, n).unwrap();
            for len in [0usize, 1, 5, 8, 63, 64, 65, 1000, 4096] {
                let v = value(len);
                let expect = c.encode(&v);
                let bytes = Bytes::from(v);
                let mut out = Vec::new();
                c.encode_value(&bytes, &mut out);
                assert_eq!(out, expect, "k={k} n={n} len={len}");
            }
        }
    }

    #[test]
    fn encode_value_data_fragments_are_zero_copy() {
        let c = Codec::new(4, 12).unwrap();
        let v = Bytes::from(value(100 * 1024)); // divides evenly: no tail copy
        let flen = c.fragment_len(v.len());
        let mut out = Vec::new();
        c.encode_value(&v, &mut out);
        for (i, f) in out.iter().take(4).enumerate() {
            assert_eq!(
                f.data().as_ref().as_ptr(),
                v.as_ref()[i * flen..].as_ptr(),
                "data fragment {i} is a window of the value"
            );
        }
        // Parity fragments share one backing allocation.
        let base = out[4].data().as_ref().as_ptr();
        for (p, f) in out.iter().skip(4).enumerate() {
            assert_eq!(f.data().as_ref().as_ptr(), base.wrapping_add(p * flen));
        }
    }

    #[test]
    fn encode_into_reuses_output_vec() {
        let c = Codec::new(3, 6).unwrap();
        let mut out = Vec::new();
        c.encode_into(&value(33), &mut out);
        assert_eq!(out.len(), 6);
        let expect = c.encode(&value(60));
        c.encode_into(&value(60), &mut out);
        assert_eq!(out, expect, "second use after clear matches fresh encode");
    }

    #[test]
    fn decode_into_matches_decode() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(1001);
        let frags = c.encode(&v);
        let mut out = vec![0xFFu8; 3]; // dirty, undersized scratch
        c.decode_into(&frags[6..10], v.len(), &mut out).unwrap();
        assert_eq!(out, v);
        // Errors leave the scratch reusable.
        assert!(c.decode_into(&frags[..2], v.len(), &mut out).is_err());
        c.decode_into(&frags[2..6], v.len(), &mut out).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn recover_into_matches_recover() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(555);
        let frags = c.encode(&v);
        let survivors = [
            frags[1].clone(),
            frags[4].clone(),
            frags[9].clone(),
            frags[11].clone(),
        ];
        let mut out = Vec::new();
        c.recover_into(&survivors, &[0, 2, 7], v.len(), &mut out)
            .unwrap();
        assert_eq!(out, c.recover(&survivors, &[0, 2, 7], v.len()).unwrap());
        for r in &out {
            assert_eq!(r, &frags[r.index() as usize]);
        }
    }

    #[test]
    fn inversion_cache_populates_and_hits_identically() {
        let _guard = MODE_LOCK.lock().unwrap();
        let warm = Codec::new(3, 6).unwrap();
        let v = value(99);
        let frags = warm.encode(&v);

        // Fast path (all data fragments) must not touch the cache.
        assert_eq!(warm.decode(&frags[..3], v.len()).unwrap(), v);
        assert_eq!(warm.cached_inversions(), 0);

        let subset = [frags[1].clone(), frags[4].clone(), frags[5].clone()];
        assert_eq!(warm.decode(&subset, v.len()).unwrap(), v);
        assert_eq!(warm.cached_inversions(), 1);

        // Warm decode (cache hit) is byte-identical to a cold codec.
        let cold = Codec::new(3, 6).unwrap();
        assert_eq!(
            warm.decode(&subset, v.len()).unwrap(),
            cold.decode(&subset, v.len()).unwrap()
        );
        assert_eq!(warm.cached_inversions(), 1, "same subset reuses its entry");

        // `recover` shares the same cache.
        let re = warm.recover(&subset, &[0, 2], v.len()).unwrap();
        assert_eq!(re[0], frags[0]);
        assert_eq!(re[1], frags[2]);
        assert_eq!(warm.cached_inversions(), 1);
    }

    #[test]
    fn inversion_cache_is_bounded() {
        // k=2, n=12: 66 two-fragment subsets, 65 of which need algebra —
        // one more than the cap, so eviction must kick in.
        let _guard = MODE_LOCK.lock().unwrap();
        let c = Codec::new(2, 12).unwrap();
        let v = value(24);
        let frags = c.encode(&v);
        for a in 0..12 {
            for b in (a + 1)..12 {
                let subset = [frags[a].clone(), frags[b].clone()];
                assert_eq!(c.decode(&subset, v.len()).unwrap(), v, "subset {a},{b}");
            }
        }
        assert!(
            c.cached_inversions() <= super::INVERSION_CACHE_CAP,
            "cache stayed bounded: {}",
            c.cached_inversions()
        );
        // Everything still decodes correctly after evictions.
        let subset = [frags[2].clone(), frags[3].clone()];
        assert_eq!(c.decode(&subset, v.len()).unwrap(), v);
    }

    /// Overwrites `changed` bytes of `v` starting at `at`, wrapping values.
    fn overwrite(v: &[u8], at: usize, changed: usize) -> Vec<u8> {
        let mut out = v.to_vec();
        for i in 0..changed {
            out[(at + i) % v.len()] ^= 0x5A;
        }
        out
    }

    #[test]
    fn delta_window_brackets_the_dirty_columns() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(100); // flen = 25
                            // Change byte 30: row 1, column 5.
        let w = overwrite(&v, 30, 1);
        assert_eq!(c.delta_window(&v, &w), (5, 1));
        // Identical values: empty window.
        assert_eq!(c.delta_window(&v, &v), (0, 0));
        // Changes in two rows widen to the union of their columns.
        let mut w = v.clone();
        w[3] ^= 1; // row 0, col 3
        w[60] ^= 1; // row 2, col 10
        assert_eq!(c.delta_window(&v, &w), (3, 8));
    }

    #[test]
    fn delta_encode_matches_xor_of_full_encodes() {
        let _guard = MODE_LOCK.lock().unwrap();
        for (k, n) in [(4, 12), (16, 19), (3, 6), (4, 4)] {
            let c = Codec::new(k, n).unwrap();
            for len in [97usize, 1000, 4096] {
                let old = value(len);
                let new = overwrite(&old, len / 3, len / 50 + 1);
                let full_old = c.encode(&old);
                let full_new = c.encode(&new);
                let mut deltas = Vec::new();
                let (start, w) = c.encode_delta_into(&old, &new, &mut deltas);
                assert!(w > 0);
                assert_eq!(deltas.len(), n);
                let flen = c.fragment_len(len);
                for (i, d) in deltas.iter().enumerate() {
                    assert_eq!(d.window(), Some((start as u32, flen as u32)));
                    assert_eq!(d.len(), w, "k={k} n={n} len={len}");
                    // The delta payload is the XOR of the two full
                    // fragments inside the window…
                    for (j, &b) in d.data().iter().enumerate() {
                        assert_eq!(
                            b,
                            full_old[i].data()[start + j] ^ full_new[i].data()[start + j]
                        );
                    }
                    // …and the fragments agree outside it.
                    assert_eq!(
                        full_old[i].data()[..start],
                        full_new[i].data()[..start],
                        "clean prefix"
                    );
                    assert_eq!(
                        full_old[i].data()[start + w..],
                        full_new[i].data()[start + w..],
                        "clean suffix"
                    );
                    // Resolution against the base reproduces the successor
                    // fragment byte-identically.
                    let resolved = d.apply_delta(&full_old[i]).expect("base matches");
                    assert_eq!(&resolved, &full_new[i], "k={k} n={n} len={len} frag {i}");
                }
            }
        }
    }

    #[test]
    fn delta_encode_of_identical_values_is_empty() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(100);
        let full = c.encode(&v);
        let mut deltas = Vec::new();
        assert_eq!(c.encode_delta_into(&v, &v, &mut deltas), (0, 0));
        assert_eq!(deltas.len(), 12);
        for (i, d) in deltas.iter().enumerate() {
            assert!(d.is_empty());
            assert_eq!(d.window(), Some((0, 25)));
            let resolved = d.apply_delta(&full[i]).expect("empty delta resolves");
            assert_eq!(&resolved, &full[i]);
        }
    }

    #[test]
    fn delta_encode_covers_the_padded_tail_row() {
        // len=101 with k=4: flen=26, the tail row holds 23 real bytes + 3
        // pad zeros. A change in the last real byte must round-trip.
        let c = Codec::new(4, 12).unwrap();
        let old = value(101);
        let mut new = old.clone();
        new[100] ^= 0xFF; // row 3, column 22
        let full_new = c.encode(&new);
        let full_old = c.encode(&old);
        let mut deltas = Vec::new();
        let (start, w) = c.encode_delta_into(&old, &new, &mut deltas);
        assert_eq!((start, w), (22, 1));
        for (i, d) in deltas.iter().enumerate() {
            let resolved = d.apply_delta(&full_old[i]).expect("base matches");
            assert_eq!(&resolved, &full_new[i], "fragment {i}");
        }
    }

    #[test]
    fn delta_chain_resolves_byte_identical_to_full_encode() {
        let c = Codec::new(4, 12).unwrap();
        let mut cur = value(1000);
        let mut frags = c.encode(&cur);
        let mut deltas = Vec::new();
        for step in 0..5 {
            let next = overwrite(&cur, step * 37, 11);
            c.encode_delta_into(&cur, &next, &mut deltas);
            let expect = c.encode(&next);
            for (i, d) in deltas.iter().enumerate() {
                frags[i] = d.apply_delta(&frags[i]).expect("chain base matches");
                assert_eq!(&frags[i], &expect[i], "step {step} fragment {i}");
            }
            cur = next;
        }
        assert_eq!(c.decode(&frags[5..9], cur.len()).unwrap(), cur);
    }

    #[test]
    fn delta_encode_is_mode_independent() {
        let _guard = MODE_LOCK.lock().unwrap();
        let c = Codec::new(4, 12).unwrap();
        let old = value(4096);
        let new = overwrite(&old, 1234, 40);
        let mut packed = Vec::new();
        c.encode_delta_into(&old, &new, &mut packed);
        Codec::set_reference_mode(true);
        let mut reference = Vec::new();
        c.encode_delta_into(&old, &new, &mut reference);
        Codec::set_reference_mode(false);
        assert_eq!(packed, reference, "delta bytes agree across codec impls");
    }

    #[test]
    fn default_policy_shape_matches_paper() {
        // (k=4, n=12) with 100 KiB values: 25 KiB fragments, 3x overhead.
        let c = Codec::new(4, 12).unwrap();
        let v = value(100 * 1024);
        let frags = c.encode(&v);
        assert_eq!(frags.len(), 12);
        let total: usize = frags.iter().map(Fragment::len).sum();
        assert_eq!(total, 3 * v.len(), "same overhead as triple replication");
    }
}
