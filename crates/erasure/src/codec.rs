//! The systematic Reed-Solomon codec.
//!
//! The generator matrix is derived from an `n × k` Vandermonde matrix `V`
//! (rows are evaluation points `0..n`): `G = V · (V_top)⁻¹`, where `V_top`
//! is the top `k × k` block. Multiplying by a fixed invertible matrix keeps
//! every `k`-row subset of `G` invertible while turning the top block into
//! the identity — hence *systematic*: fragments `0..k` are the value
//! striped verbatim.

use bytes::Bytes;

use crate::error::CodecError;
use crate::fragment::{Fragment, FragmentIndex};
use crate::gf;
use crate::matrix::Matrix;

/// A systematic Reed-Solomon `(k, n)` erasure codec over GF(2⁸).
///
/// `k` is the number of data fragments, `n` the total number of fragments;
/// any `k` distinct fragments recover the value. The generator matrix is
/// computed once at construction; encode/decode are then pure table-driven
/// byte loops.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), erasure::CodecError> {
/// let codec = erasure::Codec::new(4, 12)?;
/// let frags = codec.encode(b"hello, archive");
/// let back = codec.decode(&frags[4..8], 14)?; // four parity fragments
/// assert_eq!(back, b"hello, archive");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Codec {
    k: usize,
    n: usize,
    generator: Matrix,
}

impl Codec {
    /// Creates a `(k, n)` codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameters`] unless `0 < k <= n <= 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodecError> {
        if k == 0 || k > n || n > 256 {
            return Err(CodecError::InvalidParameters { k, n });
        }
        let vandermonde = Matrix::vandermonde(n, k);
        let top = vandermonde.submatrix(k, k);
        let top_inv = top
            .inverse()
            .expect("top block of a Vandermonde matrix is invertible");
        let generator = vandermonde.mul(&top_inv);
        debug_assert!(generator.submatrix(k, k).is_identity());
        Ok(Codec { k, n, generator })
    }

    /// Number of data fragments (`k`).
    pub fn data_fragments(&self) -> usize {
        self.k
    }

    /// Total number of fragments (`n`).
    pub fn total_fragments(&self) -> usize {
        self.n
    }

    /// Number of parity fragments (`n - k`).
    pub fn parity_fragments(&self) -> usize {
        self.n - self.k
    }

    /// Payload length of each fragment for a value of `value_len` bytes:
    /// `ceil(value_len / k)`.
    pub fn fragment_len(&self, value_len: usize) -> usize {
        value_len.div_ceil(self.k)
    }

    /// Encodes `value` into all `n` fragments (data fragments first).
    ///
    /// The value is zero-padded up to `k * fragment_len`; the original
    /// length must be carried out-of-band (Pahoehoe keeps it in metadata)
    /// and passed back to [`decode`](Self::decode).
    pub fn encode(&self, value: &[u8]) -> Vec<Fragment> {
        let flen = self.fragment_len(value.len());
        let mut frags = Vec::with_capacity(self.n);

        // Data fragments: the value striped in order, last one padded.
        let mut data_shards: Vec<Bytes> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let start = (i * flen).min(value.len());
            let end = ((i + 1) * flen).min(value.len());
            let mut shard = Vec::with_capacity(flen);
            shard.extend_from_slice(&value[start..end]);
            shard.resize(flen, 0);
            data_shards.push(Bytes::from(shard));
        }
        for (i, shard) in data_shards.iter().enumerate() {
            frags.push(Fragment::new(i as FragmentIndex, shard.clone()));
        }

        // Parity fragments: G[row] · data.
        for row in self.k..self.n {
            let mut parity = vec![0u8; flen];
            for (i, shard) in data_shards.iter().enumerate() {
                gf::mul_acc(&mut parity, shard, self.generator.get(row, i));
            }
            frags.push(Fragment::new(row as FragmentIndex, parity));
        }
        frags
    }

    /// Decodes the original `value_len`-byte value from any `k` distinct
    /// fragments (duplicates are ignored).
    ///
    /// # Errors
    ///
    /// * [`CodecError::NotEnoughFragments`] — fewer than `k` distinct
    ///   indices supplied.
    /// * [`CodecError::InvalidFragmentIndex`] — an index is `>= n`.
    /// * [`CodecError::FragmentLengthMismatch`] — a payload length differs
    ///   from `fragment_len(value_len)`.
    pub fn decode(&self, fragments: &[Fragment], value_len: usize) -> Result<Vec<u8>, CodecError> {
        let data_shards = self.data_shards(fragments, value_len)?;
        let flen = self.fragment_len(value_len);
        let mut value = Vec::with_capacity(self.k * flen);
        for shard in &data_shards {
            value.extend_from_slice(shard);
        }
        value.truncate(value_len);
        Ok(value)
    }

    /// Regenerates the fragments with indices `missing` from any `k`
    /// distinct fragments.
    ///
    /// This is the primitive behind the paper's *sibling fragment recovery*
    /// optimization: one retrieval of `k` fragments amortizes over
    /// regenerating **all** missing sibling fragments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decode`](Self::decode), plus
    /// [`CodecError::InvalidFragmentIndex`] if a requested index is `>= n`.
    pub fn recover(
        &self,
        fragments: &[Fragment],
        missing: &[FragmentIndex],
        value_len: usize,
    ) -> Result<Vec<Fragment>, CodecError> {
        for &m in missing {
            if (m as usize) >= self.n {
                return Err(CodecError::InvalidFragmentIndex {
                    index: m,
                    n: self.n,
                });
            }
        }
        let data_shards = self.data_shards(fragments, value_len)?;
        let flen = self.fragment_len(value_len);
        let mut out = Vec::with_capacity(missing.len());
        for &m in missing {
            let row = m as usize;
            let mut shard = vec![0u8; flen];
            for (i, data) in data_shards.iter().enumerate() {
                gf::mul_acc(&mut shard, data, self.generator.get(row, i));
            }
            out.push(Fragment::new(m, shard));
        }
        Ok(out)
    }

    /// Reconstructs the `k` data shards (padded) from any `k` distinct
    /// fragments.
    fn data_shards(
        &self,
        fragments: &[Fragment],
        value_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodecError> {
        let flen = self.fragment_len(value_len);

        // Deduplicate by index, validating as we go.
        let mut chosen: Vec<Option<&Fragment>> = vec![None; self.n];
        let mut distinct = 0usize;
        for f in fragments {
            let idx = f.index() as usize;
            if idx >= self.n {
                return Err(CodecError::InvalidFragmentIndex {
                    index: f.index(),
                    n: self.n,
                });
            }
            if f.len() != flen {
                return Err(CodecError::FragmentLengthMismatch {
                    expected: flen,
                    actual: f.len(),
                });
            }
            if chosen[idx].is_none() {
                chosen[idx] = Some(f);
                distinct += 1;
                if distinct == self.k {
                    break;
                }
            }
        }
        if distinct < self.k {
            return Err(CodecError::NotEnoughFragments {
                have: distinct,
                need: self.k,
            });
        }

        let picked: Vec<&Fragment> = chosen.into_iter().flatten().take(self.k).collect();

        // Fast path: all k data fragments present — no algebra needed.
        if picked
            .iter()
            .enumerate()
            .all(|(i, f)| f.index() as usize == i)
        {
            return Ok(picked.iter().map(|f| f.data().to_vec()).collect());
        }

        let rows: Vec<usize> = picked.iter().map(|f| f.index() as usize).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any k rows of the systematic generator are independent");

        let mut shards = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut shard = vec![0u8; flen];
            for (c, frag) in picked.iter().enumerate() {
                gf::mul_acc(&mut shard, frag.data(), inv.get(r, c));
            }
            shards.push(shard);
        }
        Ok(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn parameters_validated() {
        assert!(Codec::new(4, 12).is_ok());
        assert!(Codec::new(1, 1).is_ok());
        assert!(Codec::new(256, 256).is_ok());
        assert_eq!(
            Codec::new(0, 4).unwrap_err(),
            CodecError::InvalidParameters { k: 0, n: 4 }
        );
        assert!(Codec::new(5, 4).is_err());
        assert!(Codec::new(4, 257).is_err());
    }

    #[test]
    fn accessors() {
        let c = Codec::new(4, 12).unwrap();
        assert_eq!(c.data_fragments(), 4);
        assert_eq!(c.total_fragments(), 12);
        assert_eq!(c.parity_fragments(), 8);
        assert_eq!(c.fragment_len(100), 25);
        assert_eq!(c.fragment_len(101), 26);
        assert_eq!(c.fragment_len(0), 0);
    }

    #[test]
    fn systematic_property() {
        // The first k fragments are the value striped verbatim.
        let c = Codec::new(4, 12).unwrap();
        let v = value(100);
        let frags = c.encode(&v);
        for i in 0..4 {
            assert_eq!(&frags[i].data()[..], &v[i * 25..(i + 1) * 25]);
        }
    }

    #[test]
    fn roundtrip_with_data_fragments() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(1000);
        let frags = c.encode(&v);
        assert_eq!(c.decode(&frags[..4], v.len()).unwrap(), v);
    }

    #[test]
    fn roundtrip_with_any_k_subset() {
        let c = Codec::new(3, 6).unwrap();
        let v = value(77);
        let frags = c.encode(&v);
        // Exhaustively test every 3-subset of 6 fragments.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for d in (b + 1)..6 {
                    let subset = vec![frags[a].clone(), frags[b].clone(), frags[d].clone()];
                    assert_eq!(c.decode(&subset, v.len()).unwrap(), v, "subset {a},{b},{d}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_value_not_divisible_by_k() {
        let c = Codec::new(4, 8).unwrap();
        for len in [1usize, 2, 3, 5, 97, 102_401] {
            let v = value(len);
            let frags = c.encode(&v);
            assert_eq!(c.decode(&frags[4..], len).unwrap(), v, "len={len}");
        }
    }

    #[test]
    fn roundtrip_empty_value() {
        let c = Codec::new(4, 12).unwrap();
        let frags = c.encode(b"");
        assert_eq!(frags.len(), 12);
        assert!(frags.iter().all(Fragment::is_empty));
        assert_eq!(c.decode(&frags[5..9], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn k_equals_one_is_replication() {
        let c = Codec::new(1, 3).unwrap();
        let v = value(10);
        let frags = c.encode(&v);
        for f in &frags {
            assert_eq!(&f.data()[..], &v[..], "every fragment is a replica");
        }
    }

    #[test]
    fn k_equals_n_has_no_parity() {
        let c = Codec::new(4, 4).unwrap();
        let v = value(64);
        let frags = c.encode(&v);
        assert_eq!(frags.len(), 4);
        assert_eq!(c.decode(&frags, v.len()).unwrap(), v);
    }

    #[test]
    fn duplicates_are_ignored() {
        let c = Codec::new(3, 6).unwrap();
        let v = value(30);
        let frags = c.encode(&v);
        let with_dups = vec![
            frags[5].clone(),
            frags[5].clone(),
            frags[1].clone(),
            frags[1].clone(),
            frags[3].clone(),
        ];
        assert_eq!(c.decode(&with_dups, v.len()).unwrap(), v);
    }

    #[test]
    fn not_enough_fragments_is_an_error() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(40);
        let frags = c.encode(&v);
        let err = c.decode(&frags[..3], v.len()).unwrap_err();
        assert_eq!(err, CodecError::NotEnoughFragments { have: 3, need: 4 });
        // Duplicates do not count toward k.
        let dup = vec![frags[0].clone(); 4];
        assert_eq!(
            c.decode(&dup, v.len()).unwrap_err(),
            CodecError::NotEnoughFragments { have: 1, need: 4 }
        );
    }

    #[test]
    fn invalid_index_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let bogus = Fragment::new(9, vec![0u8; 5]);
        let err = c.decode(&[bogus], 10).unwrap_err();
        assert_eq!(err, CodecError::InvalidFragmentIndex { index: 9, n: 4 });
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let v = value(10);
        let mut frags = c.encode(&v);
        frags[1] = Fragment::new(1, vec![0u8; 3]);
        let err = c.decode(&frags, v.len()).unwrap_err();
        assert_eq!(
            err,
            CodecError::FragmentLengthMismatch {
                expected: 5,
                actual: 3
            }
        );
    }

    #[test]
    fn recover_regenerates_exact_fragments() {
        let c = Codec::new(4, 12).unwrap();
        let v = value(100 * 1024);
        let frags = c.encode(&v);
        // Pretend fragments 2, 7, 11 were lost; recover from 4 others.
        let survivors = vec![
            frags[0].clone(),
            frags[5].clone(),
            frags[8].clone(),
            frags[3].clone(),
        ];
        let recovered = c.recover(&survivors, &[2, 7, 11], v.len()).unwrap();
        assert_eq!(recovered.len(), 3);
        for r in &recovered {
            assert_eq!(r, &frags[r.index() as usize]);
        }
    }

    #[test]
    fn recover_all_missing_from_k() {
        // Recover every fragment (even present ones) — must equal encode.
        let c = Codec::new(3, 6).unwrap();
        let v = value(42);
        let frags = c.encode(&v);
        let all: Vec<FragmentIndex> = (0..6).collect();
        let re = c.recover(&frags[3..6], &all, v.len()).unwrap();
        assert_eq!(re, frags);
    }

    #[test]
    fn recover_invalid_target_is_an_error() {
        let c = Codec::new(2, 4).unwrap();
        let v = value(8);
        let frags = c.encode(&v);
        let err = c.recover(&frags[..2], &[4], v.len()).unwrap_err();
        assert_eq!(err, CodecError::InvalidFragmentIndex { index: 4, n: 4 });
    }

    #[test]
    fn default_policy_shape_matches_paper() {
        // (k=4, n=12) with 100 KiB values: 25 KiB fragments, 3x overhead.
        let c = Codec::new(4, 12).unwrap();
        let v = value(100 * 1024);
        let frags = c.encode(&v);
        assert_eq!(frags.len(), 12);
        let total: usize = frags.iter().map(Fragment::len).sum();
        assert_eq!(total, 3 * v.len(), "same overhead as triple replication");
    }
}
