#![warn(missing_docs)]
// Unsafe code is denied everywhere except the one documented exception:
// `gf::simd`, the split-nibble PSHUFB kernel, which needs `std::arch`
// intrinsics and carries per-call safety arguments.
#![deny(unsafe_code)]

//! Systematic Reed-Solomon erasure coding over GF(2⁸), built from scratch.
//!
//! Pahoehoe (DSN 2010) stores each object version as `n = k + m` fragments
//! produced by a *systematic* Reed-Solomon code: the value is striped across
//! the first `k` *data* fragments and the remaining `m` *parity* fragments
//! are linear combinations of the data fragments over GF(2⁸). Any `k` of the
//! `n` fragments suffice to recover the value, and — crucially for the
//! paper's *sibling fragment recovery* optimization — once any `k` fragments
//! are in hand, **all** missing sibling fragments can be regenerated without
//! any further network traffic.
//!
//! This crate provides exactly that interface:
//!
//! ```
//! use erasure::{Codec, Fragment};
//!
//! # fn main() -> Result<(), erasure::CodecError> {
//! let codec = Codec::new(4, 12)?;
//! let value = b"a binary large object".to_vec();
//! let fragments = codec.encode(&value);
//! assert_eq!(fragments.len(), 12);
//!
//! // Any 4 fragments recover the value, e.g. the last four parities:
//! let subset: Vec<Fragment> = fragments[8..].to_vec();
//! let recovered = codec.decode(&subset, value.len())?;
//! assert_eq!(recovered, value);
//! # Ok(())
//! # }
//! ```
//!
//! The field arithmetic lives in [`gf`], dense matrices with
//! Gaussian-elimination inversion in [`matrix`], and the codec itself in
//! [`codec`].

pub mod checksum;
pub mod codec;
pub mod fragment;
pub mod gf;
pub mod matrix;

mod error;

pub use checksum::Checksum;
pub use codec::{Codec, CodecImpl};
pub use error::CodecError;
pub use fragment::{Fragment, FragmentIndex, DELTA_WINDOW_BYTES};
