//! Erasure-coded fragments.

use bytes::Bytes;

/// Index of a fragment within its object version's code word.
///
/// Fragments `0..k` are *data* fragments (the value striped in order);
/// fragments `k..n` are *parity* fragments. Pahoehoe's default policy is
/// `(k = 4, n = 12)`, so indices fit comfortably in a byte.
pub type FragmentIndex = u8;

/// Wire overhead of a windowed delta fragment over a dense one: a 4-byte
/// column offset plus a 2-byte flags/length tag. Dense fragments carry
/// neither.
pub const DELTA_WINDOW_BYTES: usize = 6;

/// One erasure-coded fragment of an object version.
///
/// Fragments are cheap to clone: the payload is a reference-counted
/// [`Bytes`] buffer, which matters in simulation where the same fragment is
/// "sent" to many servers.
///
/// A fragment is either **dense** (the payload is the full
/// `fragment_len(value_len)` bytes of its code-word row) or a **windowed
/// delta**: the payload covers only the dirty column window
/// `[start, start + len)` of an XOR between two same-length versions, with
/// every column outside the window implicitly zero. Because the code is
/// linear and column-independent, a delta fragment XORed into the matching
/// window of the base version's same-index fragment yields the successor's
/// dense fragment exactly (see [`apply_delta`](Fragment::apply_delta)).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Fragment {
    index: FragmentIndex,
    data: Bytes,
    /// `Some((start, full_len))` for a windowed delta: the payload covers
    /// columns `start..start + data.len()` of a `full_len`-byte fragment.
    /// `None` for dense fragments.
    window: Option<(u32, u32)>,
}

impl Fragment {
    /// Creates a dense fragment with the given code-word index and payload.
    pub fn new(index: FragmentIndex, data: impl Into<Bytes>) -> Self {
        Fragment {
            index,
            data: data.into(),
            window: None,
        }
    }

    /// Creates a windowed delta fragment: `data` covers columns
    /// `start..start + data.len()` of a `full_len`-byte fragment, all
    /// other columns zero.
    pub fn new_delta(
        index: FragmentIndex,
        data: impl Into<Bytes>,
        start: u32,
        full_len: u32,
    ) -> Self {
        let data = data.into();
        debug_assert!(start as usize + data.len() <= full_len as usize);
        Fragment {
            index,
            data,
            window: Some((start, full_len)),
        }
    }

    /// The fragment's index within the code word.
    pub fn index(&self) -> FragmentIndex {
        self.index
    }

    /// The fragment payload.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty (possible for zero-length values).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `Some((start, full_len))` when this is a windowed delta fragment,
    /// `None` when dense.
    pub fn window(&self) -> Option<(u32, u32)> {
        self.window
    }

    /// Whether this is a windowed delta fragment.
    pub fn is_delta(&self) -> bool {
        self.window.is_some()
    }

    /// Modeled wire size: the payload, plus the window header for delta
    /// fragments. Identical to `len()` for dense fragments.
    pub fn wire_len(&self) -> usize {
        self.data.len()
            + if self.window.is_some() {
                DELTA_WINDOW_BYTES
            } else {
                0
            }
    }

    /// Resolves a windowed delta fragment against the dense fragment of
    /// its base version (same index): clones the base bytes and XORs the
    /// delta window in, yielding the successor version's dense fragment.
    ///
    /// Returns `None` when `self` is not a delta, the indices differ, or
    /// the base's length does not match the delta's recorded full length —
    /// a resolution against the wrong base must fail loudly rather than
    /// store corrupt bytes.
    pub fn apply_delta(&self, base: &Fragment) -> Option<Fragment> {
        let (start, full_len) = self.window?;
        if base.index != self.index || base.window.is_some() || base.len() != full_len as usize {
            return None;
        }
        let start = start as usize;
        let mut resolved = base.data.to_vec();
        for (r, d) in resolved[start..start + self.data.len()]
            .iter_mut()
            .zip(self.data.iter())
        {
            *r ^= d;
        }
        Some(Fragment::new(self.index, resolved))
    }
}

impl std::fmt::Debug for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Fragment");
        d.field("index", &self.index).field("len", &self.data.len());
        if let Some(w) = self.window {
            d.field("window", &w);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let f = Fragment::new(3, vec![1, 2, 3]);
        assert_eq!(f.index(), 3);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(&f.data()[..], &[1, 2, 3]);
        assert_eq!(f.window(), None);
        assert!(!f.is_delta());
        assert_eq!(f.wire_len(), 3);
    }

    #[test]
    fn empty_fragment() {
        let f = Fragment::new(0, Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn clones_share_payload() {
        let f = Fragment::new(1, vec![9; 1024]);
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.data().as_ptr(), g.data().as_ptr());
    }

    #[test]
    fn debug_shows_index_and_len() {
        let f = Fragment::new(7, vec![0; 42]);
        let s = format!("{f:?}");
        assert!(s.contains("index: 7") && s.contains("len: 42"), "{s}");
        assert!(!s.contains("window"), "dense fragments elide the window");
        let d = Fragment::new_delta(7, vec![0; 2], 5, 42);
        let s = format!("{d:?}");
        assert!(s.contains("window: (5, 42)"), "{s}");
    }

    #[test]
    fn delta_fragment_carries_window_and_wire_overhead() {
        let d = Fragment::new_delta(2, vec![0xAA, 0xBB], 3, 10);
        assert!(d.is_delta());
        assert_eq!(d.window(), Some((3, 10)));
        assert_eq!(d.len(), 2);
        assert_eq!(d.wire_len(), 2 + DELTA_WINDOW_BYTES);
    }

    #[test]
    fn apply_delta_xors_the_window() {
        let base = Fragment::new(4, vec![1u8, 2, 3, 4, 5]);
        let delta = Fragment::new_delta(4, vec![0xFF, 0x0F], 1, 5);
        let resolved = delta.apply_delta(&base).expect("matching base");
        assert_eq!(&resolved.data()[..], &[1, 2 ^ 0xFF, 3 ^ 0x0F, 4, 5]);
        assert_eq!(resolved.index(), 4);
        assert!(!resolved.is_delta(), "resolution yields a dense fragment");
    }

    #[test]
    fn apply_delta_empty_window_clones_the_base() {
        let base = Fragment::new(0, vec![7u8; 8]);
        let delta = Fragment::new_delta(0, Vec::new(), 0, 8);
        let resolved = delta.apply_delta(&base).expect("empty delta resolves");
        assert_eq!(resolved.data(), base.data());
    }

    #[test]
    fn apply_delta_rejects_mismatches() {
        let base = Fragment::new(1, vec![0u8; 8]);
        // Dense fragments do not resolve.
        assert!(Fragment::new(1, vec![0u8; 8]).apply_delta(&base).is_none());
        // Index mismatch.
        let delta = Fragment::new_delta(2, vec![1], 0, 8);
        assert!(delta.apply_delta(&base).is_none());
        // Base length disagrees with the recorded full length.
        let delta = Fragment::new_delta(1, vec![1], 0, 9);
        assert!(delta.apply_delta(&base).is_none());
        // A delta base is not a valid resolution target.
        let delta_base = Fragment::new_delta(1, vec![0u8; 8], 0, 8);
        let delta = Fragment::new_delta(1, vec![1], 0, 8);
        assert!(delta.apply_delta(&delta_base).is_none());
    }
}
