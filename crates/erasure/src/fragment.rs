//! Erasure-coded fragments.

use bytes::Bytes;

/// Index of a fragment within its object version's code word.
///
/// Fragments `0..k` are *data* fragments (the value striped in order);
/// fragments `k..n` are *parity* fragments. Pahoehoe's default policy is
/// `(k = 4, n = 12)`, so indices fit comfortably in a byte.
pub type FragmentIndex = u8;

/// One erasure-coded fragment of an object version.
///
/// Fragments are cheap to clone: the payload is a reference-counted
/// [`Bytes`] buffer, which matters in simulation where the same fragment is
/// "sent" to many servers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Fragment {
    index: FragmentIndex,
    data: Bytes,
}

impl Fragment {
    /// Creates a fragment with the given code-word index and payload.
    pub fn new(index: FragmentIndex, data: impl Into<Bytes>) -> Self {
        Fragment {
            index,
            data: data.into(),
        }
    }

    /// The fragment's index within the code word.
    pub fn index(&self) -> FragmentIndex {
        self.index
    }

    /// The fragment payload.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty (possible for zero-length values).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::fmt::Debug for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fragment")
            .field("index", &self.index)
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let f = Fragment::new(3, vec![1, 2, 3]);
        assert_eq!(f.index(), 3);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(&f.data()[..], &[1, 2, 3]);
    }

    #[test]
    fn empty_fragment() {
        let f = Fragment::new(0, Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn clones_share_payload() {
        let f = Fragment::new(1, vec![9; 1024]);
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.data().as_ptr(), g.data().as_ptr());
    }

    #[test]
    fn debug_shows_index_and_len() {
        let f = Fragment::new(7, vec![0; 42]);
        let s = format!("{f:?}");
        assert!(s.contains("index: 7") && s.contains("len: 42"), "{s}");
    }
}
