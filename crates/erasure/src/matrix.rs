//! Dense matrices over GF(2⁸) with Gaussian-elimination inversion.
//!
//! Just enough linear algebra for a systematic Reed-Solomon codec: build a
//! Vandermonde matrix, multiply, select rows, and invert. Row-major storage.

use std::fmt;

use crate::gf;

/// A dense row-major matrix over GF(2⁸).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `size × size` identity matrix.
    pub fn identity(size: usize) -> Self {
        let mut m = Matrix::zero(size, size);
        for i in 0..size {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::zero(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Creates the `rows × cols` Vandermonde matrix whose entry `(r, c)` is
    /// `r^c`. Any `cols` rows of it are linearly independent as long as
    /// `rows <= 256` (the evaluation points `0..rows` are distinct).
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (GF(2⁸) only has 256 distinct points).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf::pow(r as u8, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `row` as a slice.
    pub fn row(&self, row: usize) -> &[u8] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0 {
                    continue;
                }
                let dst_range = r * out.cols..(r + 1) * out.cols;
                gf::mul_acc(&mut out.data[dst_range], rhs.row(i), a);
            }
        }
        out
    }

    /// Builds a new matrix from the given row indices of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "need at least one row");
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (r, &idx) in indices.iter().enumerate() {
            let row = self.row(idx);
            out.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(row);
        }
        out
    }

    /// Returns the top-left `rows × cols` submatrix.
    pub fn submatrix(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows <= self.rows && cols <= self.cols);
        let mut out = Matrix::zero(rows, cols);
        for r in 0..rows {
            out.data[r * cols..(r + 1) * cols].copy_from_slice(&self.row(r)[..cols]);
        }
        out
    }

    /// Inverts a square matrix by Gauss-Jordan elimination over GF(2⁸).
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut out = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot at or below the diagonal.
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                out.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = work.get(col, col);
            if p != 1 {
                let pinv = gf::inv(p);
                work.scale_row(col, pinv);
                out.scale_row(col, pinv);
            }
            // Eliminate every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.add_scaled_row(r, col, factor);
                    out.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(out)
    }

    /// Returns `true` if this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| (0..self.cols).all(|c| self.get(r, c) == u8::from(r == c)))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    fn scale_row(&mut self, row: usize, scalar: u8) {
        for v in &mut self.data[row * self.cols..(row + 1) * self.cols] {
            *v = gf::mul(*v, scalar);
        }
    }

    /// `row[dst] ^= scalar * row[src]` for `dst != src`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, scalar: u8) {
        assert_ne!(dst, src);
        let (a, b) = (dst.min(src), dst.max(src));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        let row_a = &mut top[a * self.cols..(a + 1) * self.cols];
        let row_b = &mut bottom[..self.cols];
        if dst < src {
            gf::mul_acc(row_a, row_b, scalar);
        } else {
            gf::mul_acc(row_b, row_a, scalar);
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:3?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert!(Matrix::identity(5).is_identity());
        assert!(!Matrix::zero(3, 3).is_identity());
        assert!(!Matrix::zero(2, 3).is_identity());
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::vandermonde(4, 4);
        assert_eq!(m.mul(&Matrix::identity(4)), m);
        assert_eq!(Matrix::identity(4).mul(&m), m);
    }

    #[test]
    fn vandermonde_entries() {
        let v = Matrix::vandermonde(4, 3);
        // Row r is [1, r, r^2].
        for r in 0..4usize {
            assert_eq!(v.get(r, 0), 1);
            assert_eq!(v.get(r, 1), r as u8);
            assert_eq!(v.get(r, 2), gf::mul(r as u8, r as u8));
        }
    }

    #[test]
    fn inverse_times_self_is_identity() {
        for n in 1..=8 {
            // Shift evaluation points by selecting rows 1..=n so the matrix
            // is invertible (rows 0..n also works; test both).
            let v = Matrix::vandermonde(n + 1, n);
            let sq = v.select_rows(&(1..=n).collect::<Vec<_>>());
            let inv = sq.inverse().expect("vandermonde rows invertible");
            assert!(sq.mul(&inv).is_identity(), "n={n}");
            assert!(inv.mul(&sq).is_identity(), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert!(m.inverse().is_none());
        assert!(Matrix::zero(3, 3).inverse().is_none());
    }

    #[test]
    fn select_rows_picks_in_order() {
        let v = Matrix::vandermonde(5, 2);
        let s = v.select_rows(&[4, 0, 2]);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
        assert_eq!(s.row(2), v.row(2));
    }

    #[test]
    fn submatrix_is_top_left_block() {
        let v = Matrix::vandermonde(5, 4);
        let s = v.submatrix(2, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(s.get(r, c), v.get(r, c));
            }
        }
    }

    #[test]
    fn multiplication_is_associative_on_samples() {
        let a = Matrix::vandermonde(4, 4);
        let b = Matrix::vandermonde(5, 4).select_rows(&[1, 2, 3, 4]);
        let c = Matrix::vandermonde(6, 4).select_rows(&[2, 3, 4, 5]);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn swap_rows_via_inverse_of_permuted() {
        // A permutation of identity rows must invert to its transpose.
        let mut m = Matrix::identity(3);
        m.swap_rows(0, 2);
        let inv = m.inverse().unwrap();
        assert_eq!(inv, m, "row-swap permutation is its own inverse");
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_multiplication_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "only square")]
    fn non_square_inverse_panics() {
        let _ = Matrix::zero(2, 3).inverse();
    }
}
