//! Arithmetic in the finite field GF(2⁸).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (`0x11d`), the polynomial conventionally used by
//! storage Reed-Solomon implementations. Multiplication and division are
//! table-driven: `EXP`/`LOG` tables are generated at compile time from the
//! generator element `2`, and a flat 64 KiB [`MUL`] product table (also
//! compile-time) backs the hot paths. The log/exp routines
//! ([`mul_logexp`], [`mul_acc_ref`]) are kept as the reference
//! implementation that the tables and property tests are checked against.
//!
//! The bulk [`mul_acc`] kernel additionally carries a split-nibble SIMD
//! path on x86-64 (the PSHUFB technique standard in storage Reed-Solomon
//! libraries): each byte's product is the XOR of two 16-entry table
//! lookups — one indexed by the low nibble, one by the high — and a
//! 16/32-wide byte shuffle performs all lookups of a register at once.
//! The nibble tables are compile-time constants; the scalar flat-table
//! loop remains both the portable fallback and the tail handler, and the
//! property tests pin every path to [`mul_acc_ref`] bit for bit.

/// The primitive polynomial, with the x⁸ term included (`0x11d`).
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Order of the multiplicative group (number of non-zero elements).
pub const GROUP_ORDER: usize = 255;

/// `EXP[i] = 2^i` for `i` in `0..510`; doubled so that
/// `EXP[LOG[a] + LOG[b]]` never needs a modular reduction.
pub static EXP: [u8; 510] = build_exp();

/// `LOG[a]` is the discrete logarithm of `a` base `2`; `LOG[0]` is unused
/// (set to 0, never read because multiplication short-circuits on zero).
pub static LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// Flat 64 KiB multiplication table: `MUL[a][b] == a * b` in GF(2⁸).
///
/// `MUL[a]` is a contiguous 256-byte row, so the encode/decode inner loops
/// fetch one row per scalar and then index it per source byte — no
/// zero-checks, no log/exp double lookup, and the row stays resident in L1
/// for the whole slice.
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_mul() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// Split-nibble product tables for the SIMD kernel: for each scalar `s`,
/// `NIB_LO[s][x] == s * x` (products of the 16 possible low nibbles) and
/// `NIB_HI[s][x] == s * (x << 4)` (products of the 16 possible high
/// nibbles). Since GF(2⁸) multiplication distributes over XOR and any
/// byte is `(b & 0x0f) ^ (b & 0xf0)`, the full product is
/// `NIB_LO[s][b & 0x0f] ^ NIB_HI[s][b >> 4]` — two shuffle-sized lookups.
static NIB_LO: [[u8; 16]; 256] = build_nib(false);

/// High-nibble half of the split-product tables; see [`NIB_LO`].
static NIB_HI: [[u8; 16]; 256] = build_nib(true);

const fn build_nib(high: bool) -> [[u8; 16]; 256] {
    let mul = build_mul();
    let mut table = [[0u8; 16]; 256];
    let mut s = 0usize;
    while s < 256 {
        let mut x = 0usize;
        while x < 16 {
            table[s][x] = mul[s][if high { x << 4 } else { x }];
            x += 1;
        }
        s += 1;
    }
    table
}

/// Returns the 256-byte multiplication row for `scalar`:
/// `mul_row(s)[b] == s * b`.
///
/// Hot loops that apply one scalar to a whole slice should fetch the row
/// once and index it directly, as [`mul_acc`] does.
#[inline]
pub fn mul_row(scalar: u8) -> &'static [u8; 256] {
    &MUL[scalar as usize]
}

/// Adds two field elements. In GF(2⁸) addition and subtraction are both XOR.
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts `b` from `a`; identical to [`add`] in characteristic 2.
#[inline]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements (branch-free [`MUL`] table lookup).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL[a as usize][b as usize]
}

/// Multiplies two field elements via the log/exp tables.
///
/// Reference implementation for [`mul`]; kept for the property tests and
/// the recorded "before" benchmark baseline.
#[inline]
pub fn mul_logexp(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`; division by zero is undefined in a field.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(2^8)");
    if a == 0 {
        0
    } else {
        let diff = LOG[a as usize] as usize + GROUP_ORDER - LOG[b as usize] as usize;
        EXP[diff % GROUP_ORDER]
    }
}

/// Computes the multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a == 0`; zero has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no multiplicative inverse in GF(2^8)");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Raises `a` to the power `e` (with the convention `pow(0, 0) == 1`).
pub fn pow(a: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    // a = 2^LOG[a], so a^e = 2^(LOG[a]*e mod 255).
    let log = LOG[a as usize] as usize * (e % GROUP_ORDER);
    EXP[log % GROUP_ORDER]
}

/// Multiplies every byte of `src` by `scalar` and XORs the products into
/// `dst`: `dst[i] ^= scalar * src[i]`.
///
/// This is the inner loop of Reed-Solomon encoding and decoding.
/// `scalar == 1` degenerates to a word-wide XOR; on x86-64 with AVX2 or
/// SSSE3 the body runs the split-nibble shuffle kernel ([`NIB_LO`] /
/// [`NIB_HI`]), and everywhere else it fetches the 256-byte [`MUL`] row
/// for `scalar` once and runs a branch-free, 8-way-unrolled loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
// lint:hot
pub fn mul_acc(dst: &mut [u8], src: &[u8], scalar: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc slice length mismatch");
    if scalar == 0 {
        return;
    }
    if scalar == 1 {
        xor_slice(dst, src);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd::mul_acc_simd(dst, src, scalar) {
        return;
    }
    mul_acc_table(dst, src, scalar);
}

/// Whether [`mul_acc`] runs the split-nibble SIMD kernel on this CPU.
///
/// Callers that choose between loop structures (the codec's packed
/// gather versus row-at-a-time `mul_acc`) use this to pick the layout
/// that feeds the faster kernel.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") || std::is_x86_feature_detected!("ssse3")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The portable flat-table body of [`mul_acc`] (non-trivial scalars);
/// also finishes the sub-register tail for the SIMD kernel.
// lint:hot
fn mul_acc_table(dst: &mut [u8], src: &[u8], scalar: u8) {
    let row = mul_row(scalar);
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        // Gather the 8 products into one word so the accumulate is a
        // single load + XOR + store instead of 8 byte-wide read-modify-
        // writes.
        let products = u64::from_ne_bytes([
            row[s[0] as usize],
            row[s[1] as usize],
            row[s[2] as usize],
            row[s[3] as usize],
            row[s[4] as usize],
            row[s[5] as usize],
            row[s[6] as usize],
            row[s[7] as usize],
        ]);
        let dw = u64::from_ne_bytes(d.try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&(dw ^ products).to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= row[*s as usize];
    }
}

/// XORs `src` into `dst` one machine word at a time (the `scalar == 1`
/// fast path of [`mul_acc`]; GF(2⁸) multiplication by 1 is the identity,
/// so the accumulate step is a plain XOR).
// lint:hot
fn xor_slice(dst: &mut [u8], src: &[u8]) {
    const W: usize = std::mem::size_of::<u64>();
    let mut d_chunks = dst.chunks_exact_mut(W);
    let mut s_chunks = src.chunks_exact(W);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let dw = u64::from_ne_bytes(d.try_into().expect("chunk is W bytes"));
        let sw = u64::from_ne_bytes(s.try_into().expect("chunk is W bytes"));
        d.copy_from_slice(&(dw ^ sw).to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= *s;
    }
}

/// The x86-64 split-nibble shuffle kernel behind [`mul_acc`].
///
/// This module is the one place the crate steps outside safe Rust: the
/// PSHUFB technique needs the `std::arch` intrinsics. The unsafety is
/// narrow and mechanical — unaligned 16/32-byte loads and stores entirely
/// inside bounds established by `chunks_exact`, plus `#[target_feature]`
/// functions that are only reached behind the matching runtime CPU
/// feature check — and every path is pinned bit-for-bit to
/// [`mul_acc_ref`] by the property tests.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::{mul_acc_table, NIB_HI, NIB_LO};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
        _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
        _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Runs the widest available shuffle kernel; returns `false` when the
    /// CPU supports neither AVX2 nor SSSE3 so the caller falls back to
    /// the portable loop. The `is_x86_feature_detected!` result is
    /// cached by the standard library, so the per-call cost is one
    /// atomic load.
    // lint:hot
    #[inline]
    pub fn mul_acc_simd(dst: &mut [u8], src: &[u8], scalar: u8) -> bool {
        if std::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 feature was just verified at runtime.
            unsafe { mul_acc_avx2(dst, src, scalar) };
            return true;
        }
        if std::is_x86_feature_detected!("ssse3") {
            // SAFETY: the SSSE3 feature was just verified at runtime.
            unsafe { mul_acc_ssse3(dst, src, scalar) };
            return true;
        }
        false
    }

    /// 32 bytes per iteration: both 16-entry nibble tables are broadcast
    /// to the two 128-bit lanes (PSHUFB shuffles within lanes), each
    /// source register is split into nibble indices, and the two
    /// shuffled product halves XOR together and into `dst`.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], scalar: u8) {
        // SAFETY: the nibble tables are 16-byte rows, valid for an
        // unaligned 128-bit load.
        let (lo, hi) = unsafe {
            (
                _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    NIB_LO[scalar as usize].as_ptr().cast::<__m128i>(),
                )),
                _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    NIB_HI[scalar as usize].as_ptr().cast::<__m128i>(),
                )),
            )
        };
        let mask = _mm256_set1_epi8(0x0f);
        let mut d_chunks = dst.chunks_exact_mut(32);
        let mut s_chunks = src.chunks_exact(32);
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            // SAFETY: `chunks_exact` guarantees `d` and `s` are exactly
            // 32 bytes, in bounds for unaligned 256-bit access.
            unsafe {
                let sv = _mm256_loadu_si256(s.as_ptr().cast::<__m256i>());
                let lo_idx = _mm256_and_si256(sv, mask);
                // The 64-bit lane shift drags bits across byte borders,
                // but the mask keeps only each byte's own high nibble.
                let hi_idx = _mm256_and_si256(_mm256_srli_epi64(sv, 4), mask);
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo, lo_idx),
                    _mm256_shuffle_epi8(hi, hi_idx),
                );
                let dv = _mm256_loadu_si256(d.as_ptr().cast::<__m256i>());
                _mm256_storeu_si256(d.as_mut_ptr().cast::<__m256i>(), _mm256_xor_si256(dv, prod));
            }
        }
        mul_acc_table(d_chunks.into_remainder(), s_chunks.remainder(), scalar);
    }

    /// 16 bytes per iteration; the same kernel narrowed to SSE registers
    /// for pre-AVX2 hardware.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports SSSE3.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], scalar: u8) {
        // SAFETY: the nibble tables are 16-byte rows, valid for an
        // unaligned 128-bit load.
        let (lo, hi) = unsafe {
            (
                _mm_loadu_si128(NIB_LO[scalar as usize].as_ptr().cast::<__m128i>()),
                _mm_loadu_si128(NIB_HI[scalar as usize].as_ptr().cast::<__m128i>()),
            )
        };
        let mask = _mm_set1_epi8(0x0f);
        let mut d_chunks = dst.chunks_exact_mut(16);
        let mut s_chunks = src.chunks_exact(16);
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            // SAFETY: `chunks_exact` guarantees `d` and `s` are exactly
            // 16 bytes, in bounds for unaligned 128-bit access.
            unsafe {
                let sv = _mm_loadu_si128(s.as_ptr().cast::<__m128i>());
                let lo_idx = _mm_and_si128(sv, mask);
                let hi_idx = _mm_and_si128(_mm_srli_epi64(sv, 4), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo, lo_idx), _mm_shuffle_epi8(hi, hi_idx));
                let dv = _mm_loadu_si128(d.as_ptr().cast::<__m128i>());
                _mm_storeu_si128(d.as_mut_ptr().cast::<__m128i>(), _mm_xor_si128(dv, prod));
            }
        }
        mul_acc_table(d_chunks.into_remainder(), s_chunks.remainder(), scalar);
    }
}

/// Log/exp-table reference implementation of [`mul_acc`].
///
/// Byte-at-a-time with a zero check per source byte — exactly the loop the
/// codec shipped with before the flat-table rewrite. The property tests
/// assert `mul_acc` matches this for all scalars, and the benchmark
/// baseline records its throughput as the "before" number.
pub fn mul_acc_ref(dst: &mut [u8], src: &[u8], scalar: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc slice length mismatch");
    if scalar == 0 {
        return;
    }
    if scalar == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let log_s = LOG[scalar as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[log_s + LOG[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse_bijections() {
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
    }

    #[test]
    fn exp_table_wraps_at_group_order() {
        for i in 0..255usize {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 is primitive for 0x11d: powers 2^0..2^254 hit every non-zero
        // element exactly once.
        let mut seen = [false; 256];
        for i in 0..255usize {
            assert!(!seen[EXP[i] as usize], "2^{i} repeated");
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn mul_matches_schoolbook() {
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let carry = a & 0x80 != 0;
                a <<= 1;
                if carry {
                    a ^= (PRIMITIVE_POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "mul({a},{b})");
            }
        }
    }

    #[test]
    fn mul_table_matches_logexp_reference() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_logexp(a, b), "MUL[{a}][{b}]");
                assert_eq!(MUL[a as usize][b as usize], mul_logexp(a, b));
            }
        }
    }

    #[test]
    fn mul_row_is_table_row() {
        for s in 0..=255u8 {
            let row = mul_row(s);
            for b in 0..=255u8 {
                assert_eq!(row[b as usize], mul(s, b));
            }
        }
    }

    #[test]
    fn mul_acc_matches_reference_all_scalars() {
        // Lengths chosen to cross every kernel boundary: sub-register
        // (19), exactly one SSE/AVX register (16, 32), register chunks
        // plus an awkward tail (133), and a realistic row (1000) — each
        // with zeros sprinkled in.
        for len in [19usize, 16, 32, 133, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(37) % 251) as u8).collect();
            for scalar in 0..=255u8 {
                let mut fast = vec![0x5Au8; src.len()];
                let mut slow = fast.clone();
                mul_acc(&mut fast, &src, scalar);
                mul_acc_ref(&mut slow, &src, scalar);
                assert_eq!(fast, slow, "len={len} scalar={scalar}");
            }
        }
    }

    #[test]
    fn nib_tables_split_the_product() {
        // NIB_LO[s][b & 0x0f] ^ NIB_HI[s][b >> 4] must reassemble the
        // full MUL row for every scalar and byte.
        for s in 0..=255u8 {
            for b in 0..=255u8 {
                let split =
                    NIB_LO[s as usize][(b & 0x0f) as usize] ^ NIB_HI[s as usize][(b >> 4) as usize];
                assert_eq!(split, mul(s, b), "scalar={s} byte={b}");
            }
        }
    }

    #[test]
    fn mul_acc_table_fallback_matches_reference() {
        // The portable loop must stay correct on its own (it is the tail
        // handler and the non-x86 path), independent of SIMD dispatch.
        let src: Vec<u8> = (0..200usize).map(|i| (i * 7 % 253) as u8).collect();
        for scalar in [2u8, 29, 142, 255] {
            let mut fast = vec![0xC3u8; src.len()];
            let mut slow = fast.clone();
            mul_acc_table(&mut fast, &src, scalar);
            mul_acc_ref(&mut slow, &src, scalar);
            assert_eq!(fast, slow, "scalar={scalar}");
        }
    }

    #[test]
    fn xor_slice_handles_unaligned_lengths() {
        for len in 0..40usize {
            let src: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(13) ^ 0xA5).collect();
            let mut fast = vec![0x33u8; len];
            let expect: Vec<u8> = fast.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            mul_acc(&mut fast, &src, 1);
            assert_eq!(fast, expect, "len={len}");
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a, "({a}*{b})/{b}");
            }
        }
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(7, 0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_of_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(1, 200), 1);
        for a in 1..=255u8 {
            assert_eq!(pow(a, 1), a);
            assert_eq!(pow(a, 2), mul(a, a));
            assert_eq!(pow(a, 255), 1, "Fermat: a^(q-1) = 1");
            assert_eq!(pow(a, 256), a, "a^q = a");
            assert_eq!(pow(a, 254), inv(a), "a^(q-2) = a^-1");
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 9, 9, 9, 9];
        mul_acc(&mut dst, &src, 7);
        for i in 0..src.len() {
            assert_eq!(dst[i], 9 ^ mul(src[i], 7));
        }
    }

    #[test]
    fn mul_acc_scalar_zero_is_noop() {
        let src = [42u8; 8];
        let mut dst = [3u8; 8];
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, [3u8; 8]);
    }

    #[test]
    fn mul_acc_scalar_one_is_xor() {
        let src = [0xAAu8; 4];
        let mut dst = [0xFFu8; 4];
        mul_acc(&mut dst, &src, 1);
        assert_eq!(dst, [0x55u8; 4]);
    }
}
