//! Property-based tests for the erasure codec and its field arithmetic.

use erasure::{gf, Codec, Fragment};
use proptest::prelude::*;

proptest! {
    // ---- field axioms ----

    #[test]
    fn gf_addition_is_commutative_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf::add(a, b), gf::add(b, a));
        prop_assert_eq!(gf::add(gf::add(a, b), c), gf::add(a, gf::add(b, c)));
        prop_assert_eq!(gf::add(a, 0), a);
        prop_assert_eq!(gf::add(a, a), 0, "every element is its own negative");
    }

    #[test]
    fn gf_multiplication_is_commutative_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf::mul(a, b), gf::mul(b, a));
        prop_assert_eq!(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
        prop_assert_eq!(gf::mul(a, 1), a);
        prop_assert_eq!(gf::mul(a, 0), 0);
    }

    #[test]
    fn gf_distributivity(a: u8, b: u8, c: u8) {
        prop_assert_eq!(
            gf::mul(a, gf::add(b, c)),
            gf::add(gf::mul(a, b), gf::mul(a, c))
        );
    }

    #[test]
    fn gf_division_inverts_multiplication(a: u8, b in 1u8..=255) {
        prop_assert_eq!(gf::div(gf::mul(a, b), b), a);
        prop_assert_eq!(gf::mul(gf::div(a, b), b), a);
    }

    // ---- codec properties ----

    #[test]
    fn decode_inverts_encode_for_any_k_subset(
        value in proptest::collection::vec(any::<u8>(), 0..4096),
        (k, n) in (1usize..=6).prop_flat_map(|k| (Just(k), k..=12)),
        seed: u64,
    ) {
        let codec = Codec::new(k, n).unwrap();
        let frags = codec.encode(&value);
        prop_assert_eq!(frags.len(), n);

        // Choose a pseudo-random k-subset from the seed.
        let mut indices: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            indices.swap(i, j);
        }
        let subset: Vec<Fragment> =
            indices[..k].iter().map(|&i| frags[i].clone()).collect();

        let decoded = codec.decode(&subset, value.len()).unwrap();
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn recovered_fragments_match_originals(
        value in proptest::collection::vec(any::<u8>(), 1..2048),
        missing_mask in 0u16..(1 << 12),
    ) {
        let codec = Codec::new(4, 12).unwrap();
        let frags = codec.encode(&value);

        let missing: Vec<u8> =
            (0..12).filter(|i| missing_mask & (1 << i) != 0).collect();
        let survivors: Vec<Fragment> = (0..12u8)
            .filter(|i| !missing.contains(i))
            .map(|i| frags[i as usize].clone())
            .collect();
        // Need at least k survivors for recovery to be possible.
        prop_assume!(survivors.len() >= 4);

        let recovered =
            codec.recover(&survivors, &missing, value.len()).unwrap();
        for r in &recovered {
            prop_assert_eq!(r, &frags[r.index() as usize]);
        }
    }

    // ---- table-driven arithmetic vs the log/exp reference ----

    #[test]
    fn table_mul_matches_logexp_reference(a: u8, b: u8) {
        prop_assert_eq!(gf::mul(a, b), gf::mul_logexp(a, b));
        prop_assert_eq!(gf::mul_row(a)[b as usize], gf::mul_logexp(a, b));
    }

    #[test]
    fn table_mul_acc_matches_logexp_reference(
        src in proptest::collection::vec(any::<u8>(), 0..512),
        init in proptest::collection::vec(any::<u8>(), 0..512),
        scalar: u8,
    ) {
        // Trim to a common length so the slices line up.
        let len = src.len().min(init.len());
        let src = &src[..len];
        let mut fast = init[..len].to_vec();
        let mut slow = init[..len].to_vec();
        gf::mul_acc(&mut fast, src, scalar);
        gf::mul_acc_ref(&mut slow, src, scalar);
        prop_assert_eq!(fast, slow);
    }

    // ---- inversion cache transparency ----

    #[test]
    fn warm_cache_decode_matches_cold_decode(
        value in proptest::collection::vec(any::<u8>(), 0..2048),
        subset_seed: u64,
        rounds in 1usize..4,
    ) {
        let warm = Codec::new(4, 12).unwrap();
        let frags = warm.encode(&value);

        let mut state = subset_seed | 1;
        for _ in 0..rounds {
            // A pseudo-random k-subset per round; repeats across rounds
            // exercise cache hits.
            let mut indices: Vec<usize> = (0..12).collect();
            for i in (1..12).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                indices.swap(i, j);
            }
            let subset: Vec<Fragment> =
                indices[..4].iter().map(|&i| frags[i].clone()).collect();

            // A fresh codec per decode never hits its cache.
            let cold = Codec::new(4, 12).unwrap();
            prop_assert_eq!(
                warm.decode(&subset, value.len()).unwrap(),
                cold.decode(&subset, value.len()).unwrap()
            );
        }
    }

    #[test]
    fn warm_cache_recover_matches_cold_recover(
        value in proptest::collection::vec(any::<u8>(), 1..2048),
        missing_mask in 0u16..(1 << 12),
    ) {
        let warm = Codec::new(4, 12).unwrap();
        let frags = warm.encode(&value);
        let missing: Vec<u8> =
            (0..12).filter(|i| missing_mask & (1 << i) != 0).collect();
        let survivors: Vec<Fragment> = (0..12u8)
            .filter(|i| !missing.contains(i))
            .map(|i| frags[i as usize].clone())
            .collect();
        prop_assume!(survivors.len() >= 4);

        // Recover twice on the warm codec (second pass is all cache hits)
        // and once on a cold codec; all three must agree byte-for-byte.
        let first = warm.recover(&survivors, &missing, value.len()).unwrap();
        let second = warm.recover(&survivors, &missing, value.len()).unwrap();
        let cold = Codec::new(4, 12).unwrap()
            .recover(&survivors, &missing, value.len()).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &cold);
    }

    // ---- `_into` variants agree with the allocating APIs ----

    #[test]
    fn into_variants_match_allocating_apis(
        value in proptest::collection::vec(any::<u8>(), 0..2048),
        reuse in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let codec = Codec::new(4, 12).unwrap();
        let frags = codec.encode(&value);

        let mut frag_scratch = Vec::new();
        codec.encode_into(&value, &mut frag_scratch);
        prop_assert_eq!(&frag_scratch, &frags);

        // Dirty, arbitrarily sized scratch must not leak into the output.
        let mut out = reuse;
        codec.decode_into(&frags[4..8], value.len(), &mut out).unwrap();
        prop_assert_eq!(&out, &value);
    }

    // ---- delta coding: linearity over GF(256) ----

    #[test]
    fn delta_chains_resolve_to_full_encodes(
        base in proptest::collection::vec(any::<u8>(), 1..2048),
        edits in proptest::collection::vec(
            (any::<u64>(), any::<u8>(), 1usize..64),
            1..6,
        ),
        (k, n) in (1usize..=6).prop_flat_map(|k| (Just(k), k..=12)),
    ) {
        let codec = Codec::new(k, n).unwrap();
        let mut prev = base;
        let mut resolved = codec.encode(&prev);
        // A chain of K successive overwrites, each a small byte-window
        // edit. Every delta stripe applied to the *previous resolved*
        // fragments must equal the full re-encode of the new blob — the
        // linearity argument, compounded across the whole chain.
        for (at, xor, span) in edits {
            let mut next = prev.clone();
            let start = (at % next.len() as u64) as usize;
            for p in start..(start + span).min(next.len()) {
                next[p] ^= xor;
            }
            let mut deltas = Vec::new();
            codec.encode_delta_into(&prev, &next, &mut deltas);
            let full = codec.encode(&next);
            prop_assert_eq!(deltas.len(), n);
            for (d, (r, f)) in deltas.iter().zip(resolved.iter().zip(full.iter())) {
                prop_assert!(d.is_delta());
                let applied = d.apply_delta(r).expect("base matches");
                prop_assert_eq!(&applied, f, "resolved delta != full encode");
            }
            resolved = full;
            prev = next;
        }
    }

    #[test]
    fn delta_windows_bracket_every_changed_column(
        old in proptest::collection::vec(any::<u8>(), 1..1024),
        at: u64,
        xor in 1u8..=255,
    ) {
        let codec = Codec::new(4, 12).unwrap();
        let mut new = old.clone();
        let p = (at % new.len() as u64) as usize;
        new[p] ^= xor;
        let (start, w) = codec.delta_window(&old, &new);
        // The single changed byte lands in data row p / flen at column
        // p % flen; the window must cover that column.
        let flen = codec.fragment_len(new.len());
        let col = p % flen;
        prop_assert!(start <= col && col < start + w, "window [{start}, {}) misses column {col}", start + w);
        prop_assert!(w >= 1);
    }

    #[test]
    fn fragment_sizes_are_uniform_and_minimal(
        len in 0usize..100_000,
        k in 1usize..=8,
    ) {
        let codec = Codec::new(k, k + 4).unwrap();
        let value = vec![0xA5u8; len];
        let frags = codec.encode(&value);
        let flen = codec.fragment_len(len);
        prop_assert!(frags.iter().all(|f| f.len() == flen));
        // Minimality: k fragments hold at least the value, less than value+k.
        prop_assert!(k * flen >= len);
        prop_assert!(k * flen < len + k);
    }
}
