//! Property-based tests for GF(2⁸) matrix algebra.

use erasure::gf;
use erasure::matrix::Matrix;
use proptest::prelude::*;

/// A random matrix of the given shape.
fn random_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u8>(), rows * cols).prop_map(move |data| {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, data[r * cols + c]);
            }
        }
        m
    })
}

proptest! {
    /// (A · B) · C == A · (B · C) for random conforming matrices.
    #[test]
    fn multiplication_is_associative(
        a in random_matrix(3, 4),
        b in random_matrix(4, 2),
        c in random_matrix(2, 5),
    ) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    /// Multiplication distributes over entry-wise XOR (field addition).
    #[test]
    fn multiplication_distributes_over_addition(
        a in random_matrix(3, 3),
        b in random_matrix(3, 3),
        c in random_matrix(3, 3),
    ) {
        let xor = |x: &Matrix, y: &Matrix| {
            let mut out = Matrix::zero(x.rows(), x.cols());
            for r in 0..x.rows() {
                for col in 0..x.cols() {
                    out.set(r, col, gf::add(x.get(r, col), y.get(r, col)));
                }
            }
            out
        };
        // A(B + C) == AB + AC.
        prop_assert_eq!(
            a.mul(&xor(&b, &c)),
            xor(&a.mul(&b), &a.mul(&c))
        );
    }

    /// If a random square matrix inverts, the inverse is two-sided and
    /// inverting twice returns the original.
    #[test]
    fn inverse_is_two_sided_and_involutive(m in random_matrix(4, 4)) {
        if let Some(inv) = m.inverse() {
            prop_assert!(m.mul(&inv).is_identity());
            prop_assert!(inv.mul(&m).is_identity());
            let back = inv.inverse().expect("inverse of invertible inverts");
            prop_assert_eq!(back, m);
        }
    }

    /// Any k rows of the systematic generator used by the codec are
    /// invertible (the property decode relies on): sample a random row
    /// subset of a Vandermonde-derived generator and invert it.
    #[test]
    fn generator_row_subsets_invert(
        rows in proptest::sample::subsequence(
            (0usize..12).collect::<Vec<_>>(),
            4,
        ),
    ) {
        let k = 4;
        let v = Matrix::vandermonde(12, k);
        let top_inv = v.submatrix(k, k).inverse().expect("vandermonde");
        let gen = v.mul(&top_inv);
        let sub = gen.select_rows(&rows);
        prop_assert!(
            sub.inverse().is_some(),
            "rows {rows:?} must be independent"
        );
    }

    /// Identity is neutral on both sides for any square matrix.
    #[test]
    fn identity_is_neutral(m in random_matrix(5, 5)) {
        let id = Matrix::identity(5);
        prop_assert_eq!(m.mul(&id), m.clone());
        prop_assert_eq!(id.mul(&m), m);
    }
}
