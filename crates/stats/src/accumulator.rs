//! Online mean/variance accumulation (Welford's algorithm).

use crate::t_table::t_critical_95;

/// Numerically stable online accumulator for mean, variance, and extremes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// A finished statistical summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); zero for `n < 2`.
    pub std_dev: f64,
    /// Half-width of the two-sided 95 % confidence interval for the mean
    /// (Student-t); zero for `n < 2`.
    pub ci95_half_width: f64,
    /// Smallest observation (NaN if empty).
    pub min: f64,
    /// Largest observation (NaN if empty).
    pub max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Bessel-corrected sample variance; zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Finishes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        let std_dev = self.std_dev();
        let ci = if self.n >= 2 {
            t_critical_95((self.n - 1) as usize) * std_dev / (self.n as f64).sqrt()
        } else {
            0.0
        };
        Summary {
            n: self.n,
            mean: self.mean,
            std_dev,
            ci95_half_width: ci,
            min: self.min,
            max: self.max,
        }
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

impl Summary {
    /// Formats as `mean ± ci95` with the given precision, e.g. `12.3 ± 0.4`.
    pub fn to_ci_string(&self, precision: usize) -> String {
        format!(
            "{:.p$} ± {:.p$}",
            self.mean,
            self.ci95_half_width,
            p = precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        let s = acc.summary();
        assert!(s.min.is_nan() && s.max.is_nan());
        assert_eq!(s.ci95_half_width, 0.0);
    }

    #[test]
    fn single_observation() {
        let acc: Accumulator = [7.0].into_iter().collect();
        let s = acc.summary();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!((s.min, s.max), (7.0, 7.0));
    }

    #[test]
    fn known_mean_and_variance() {
        // 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population var 4, sample var 32/7.
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.mean(), 5.0);
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        let s = acc.summary();
        assert_eq!((s.min, s.max), (2.0, 9.0));
        // CI half-width = t(7) * s / sqrt(8).
        let expected = 2.365 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!((s.ci95_half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let acc: Accumulator = std::iter::repeat_n(3.5, 50).collect();
        let s = acc.summary();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
    }

    #[test]
    fn welford_is_stable_with_large_offsets() {
        // Same variance whether or not a huge constant offset is present.
        let base: Accumulator = (0..1000).map(|i| (i % 7) as f64).collect();
        let offset: Accumulator = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        assert!((base.variance() - offset.variance()).abs() < 1e-3);
    }

    #[test]
    fn ci_string_formatting() {
        let acc: Accumulator = [1.0, 2.0, 3.0].into_iter().collect();
        let s = acc.summary();
        assert_eq!(
            s.to_ci_string(1),
            format!("{:.1} ± {:.1}", s.mean, s.ci95_half_width)
        );
    }

    #[test]
    fn extend_matches_push() {
        let mut a = Accumulator::new();
        a.extend([1.0, 2.0, 3.0]);
        let mut b = Accumulator::new();
        for x in [1.0, 2.0, 3.0] {
            b.push(x);
        }
        assert_eq!(a, b);
    }
}
