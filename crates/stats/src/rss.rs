//! Process-memory accounting for the scale harness.
//!
//! Reads the Linux `/proc/self/status` counters: `VmRSS` (current
//! resident set) and `VmHWM` (the high-water mark). `VmHWM` is monotone
//! for the life of the process, which is why the scale bench runs each
//! grid cell in its own child process — the child's high-water mark *is*
//! the cell's peak. On non-Linux platforms both readers return `None`.

/// Current resident-set size in bytes (`VmRSS`), if the platform exposes
/// it.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

/// Peak resident-set size in bytes (`VmHWM`) — the process-lifetime
/// high-water mark — if the platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

#[cfg(target_os = "linux")]
fn read_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: "VmRSS:      123456 kB".
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(not(target_os = "linux"))]
fn read_status_field(_field: &str) -> Option<u64> {
    None
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn rss_counters_are_positive_and_ordered() {
        let rss = current_rss_bytes().expect("linux exposes VmRSS");
        let peak = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(rss > 0);
        assert!(
            peak >= rss / 2,
            "HWM {peak} should be near or above RSS {rss}"
        );
    }

    #[test]
    fn peak_reflects_allocation() {
        let before = peak_rss_bytes().unwrap();
        let block = vec![0xa5u8; 64 * 1024 * 1024];
        std::hint::black_box(&block);
        let after = peak_rss_bytes().unwrap();
        assert!(
            after >= before,
            "high-water mark is monotone: {before} -> {after}"
        );
    }
}
