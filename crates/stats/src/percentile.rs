//! Order statistics.

/// Returns the `p`-th percentile (`0.0..=100.0`) of `samples` using linear
/// interpolation between closest ranks, without modifying the input order.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        assert_eq!(percentile(&[4.2], 0.0), Some(4.2));
        assert_eq!(percentile(&[4.2], 100.0), Some(4.2));
    }

    #[test]
    fn median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn interpolates_between_ranks() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 25.0), Some(12.5));
        assert_eq!(percentile(&xs, 75.0), Some(17.5));
    }

    #[test]
    fn input_order_is_irrelevant() {
        let a = [9.0, 7.0, 8.0, 1.0];
        let mut b = a;
        b.reverse();
        assert_eq!(percentile(&a, 95.0), percentile(&b, 95.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
