#![warn(missing_docs)]

//! Summary statistics for experiment reporting.
//!
//! The Pahoehoe paper runs most experiments 50 times (150 for the lossy-
//! network sweep) with different random seeds, reports the mean, and checks
//! the 95th-percentile confidence interval for statistical significance
//! (§5.1). This crate provides exactly those reductions: an online
//! [`Accumulator`] (Welford's algorithm), a [`Summary`] with the mean and a
//! Student-t 95 % confidence half-width, and order statistics.
//!
//! ```
//! use stats::Accumulator;
//!
//! let acc: Accumulator = (1..=5).map(|x| x as f64).collect();
//! let s = acc.summary();
//! assert_eq!(s.mean, 3.0);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 5.0);
//! assert!(s.ci95_half_width > 0.0);
//! ```

pub mod accumulator;
pub mod histogram;
pub mod percentile;
pub mod rss;
pub mod streaming;
pub mod t_table;

pub use accumulator::{Accumulator, Summary};
pub use histogram::Histogram;
pub use percentile::percentile;
pub use rss::{current_rss_bytes, peak_rss_bytes};
pub use streaming::StreamingQuantile;
pub use t_table::t_critical_95;
