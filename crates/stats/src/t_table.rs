//! Two-sided 95 % critical values of Student's t distribution.

/// Two-sided 95 % critical values for 1..=30 degrees of freedom.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Selected higher degrees of freedom, interpolated linearly between.
const T_95_SPARSE: [(usize, f64); 8] = [
    (30, 2.042),
    (40, 2.021),
    (50, 2.009),
    (60, 2.000),
    (80, 1.990),
    (100, 1.984),
    (150, 1.976),
    (200, 1.972),
];

/// The two-sided 95 % Student-t critical value for `df` degrees of freedom.
///
/// Exact table values for `df <= 30`, linear interpolation up to 200, and
/// the normal-approximation value 1.96 beyond.
///
/// # Panics
///
/// Panics if `df == 0` (a confidence interval needs at least two samples).
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    if df <= 30 {
        return T_95[df - 1];
    }
    if df >= 200 {
        return 1.96;
    }
    let idx = T_95_SPARSE
        .windows(2)
        .find(|w| w[0].0 <= df && df <= w[1].0)
        .expect("df in 30..200 covered by the sparse table");
    let (d0, t0) = idx[0];
    let (d1, t1) = idx[1];
    let frac = (df - d0) as f64 / (d1 - d0) as f64;
    t0 + frac * (t1 - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_dfs() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(10), 2.228);
        assert_eq!(t_critical_95(30), 2.042);
    }

    #[test]
    fn interpolated_mid_dfs() {
        assert_eq!(t_critical_95(40), 2.021);
        let t45 = t_critical_95(45);
        assert!(t45 < 2.021 && t45 > 2.009, "t(45)={t45}");
        // Paper's sample sizes: 50 runs -> df=49, 150 runs -> df=149.
        let t49 = t_critical_95(49);
        assert!((2.009..2.021).contains(&t49));
        let t149 = t_critical_95(149);
        assert!((1.975..1.985).contains(&t149));
    }

    #[test]
    fn large_df_is_normal() {
        assert_eq!(t_critical_95(200), 1.96);
        assert_eq!(t_critical_95(10_000), 1.96);
    }

    #[test]
    fn monotonically_decreasing() {
        let mut prev = t_critical_95(1);
        for df in 2..250 {
            let t = t_critical_95(df);
            assert!(t <= prev + 1e-12, "df={df}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn zero_df_panics() {
        let _ = t_critical_95(0);
    }
}
