//! Fixed-bucket histograms for latency-style distributions.

use std::fmt;

/// A histogram over `[0, +inf)` with uniform-width finite buckets and an
/// overflow bucket, rendered as an ASCII bar chart. Used for
/// time-to-convergence distributions in the ablation reports.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` finite buckets of `bucket_width`
    /// each; samples at or beyond `buckets * bucket_width` land in the
    /// overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or NaN.
    pub fn record(&mut self, x: f64) {
        assert!(x >= 0.0, "histogram domain is [0, inf)");
        let idx = (x / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the raw observations (not bucket midpoints).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Count in finite bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Count beyond the last finite bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`0.0..=1.0`) from bucket upper bounds;
    /// `None` if empty. Overflow reports as infinity.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bucket_width);
            }
        }
        Some(f64::INFINITY)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self
            .buckets
            .iter()
            .copied()
            .chain([self.overflow])
            .max()
            .unwrap_or(0)
            .max(1);
        for (i, &c) in self.buckets.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(
                f,
                "[{:>8.1}, {:>8.1}) {:>6} {}",
                i as f64 * self.bucket_width,
                (i + 1) as f64 * self.bucket_width,
                c,
                bar
            )?;
        }
        let bar = "#".repeat((self.overflow * 40 / max) as usize);
        writeln!(
            f,
            "[{:>8.1},      inf) {:>6} {}",
            self.buckets.len() as f64 * self.bucket_width,
            self.overflow,
            bar
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(10.0, 3);
        for x in [0.0, 5.0, 9.999, 10.0, 25.0, 31.0, 99.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(1.0, 4);
        for x in [1.0, 2.0, 3.0] {
            h.record(x);
        }
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(Histogram::new(1.0, 1).mean(), 0.0);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let mut h = Histogram::new(10.0, 10);
        for _ in 0..90 {
            h.record(5.0);
        }
        for _ in 0..10 {
            h.record(55.0);
        }
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(0.9), Some(10.0));
        assert_eq!(h.quantile(0.95), Some(60.0));
        assert_eq!(Histogram::new(1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn overflow_quantile_is_infinite() {
        let mut h = Histogram::new(1.0, 2);
        h.record(100.0);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn display_renders_all_buckets() {
        let mut h = Histogram::new(1.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(9.0);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("inf"));
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn negative_sample_panics() {
        Histogram::new(1.0, 1).record(-0.1);
    }
}
