//! Constant-memory quantile estimation (the P² algorithm).
//!
//! The scale harness observes millions of per-put latencies; sorting them
//! for [`percentile`](crate::percentile) would cost O(n) memory — exactly
//! what the harness must not do. [`StreamingQuantile`] keeps the five
//! marker positions of Jain & Chlamtac's P² algorithm instead: O(1)
//! memory, one parabolic-interpolation update per observation, and an
//! estimate that converges to the true quantile for stationary inputs.

/// A P² estimator for one quantile `q` in `(0, 1)`.
///
/// ```
/// use stats::StreamingQuantile;
///
/// let mut p95 = StreamingQuantile::new(0.95);
/// for i in 1..=10_000 {
///     p95.observe(f64::from(i));
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 9_500.0).abs() < 100.0, "{est}");
/// ```
#[derive(Debug, Clone)]
pub struct StreamingQuantile {
    q: f64,
    /// Marker heights (the first five observations, then P² estimates).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl StreamingQuantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        StreamingQuantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "observations must not be NaN");
        self.count += 1;
        let n = self.count as usize;
        if n <= 5 {
            self.heights[n - 1] = x;
            if n == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            }
            return;
        }

        // Find the marker cell containing x and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k + 1]
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (delta >= 1.0 && ahead > 1.0) || (delta <= -1.0 && behind < -1.0) {
                let d = delta.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// P²'s piecewise-parabolic height prediction for marker `i` moved by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola leaves the bracketing heights.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// The current estimate, or `None` before any observation. Exact
    /// while fewer than five observations have been seen.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut seen = self.heights;
                let seen = &mut seen[..n as usize];
                seen.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let rank = self.q * (seen.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                Some(seen[lo] + (rank - lo as f64) * (seen[hi] - seen[lo]))
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64 → uniform [0,1)).
    fn uniform_stream(seed: u64, n: usize) -> impl Iterator<Item = f64> {
        let mut state = seed;
        std::iter::repeat_with(move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        })
        .take(n)
    }

    #[test]
    fn empty_estimator_has_no_estimate() {
        assert_eq!(StreamingQuantile::new(0.5).estimate(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut med = StreamingQuantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            med.observe(x);
        }
        assert_eq!(med.estimate(), Some(3.0));
    }

    #[test]
    fn converges_on_uniform_data() {
        for (q, expected) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let mut est = StreamingQuantile::new(q);
            for x in uniform_stream(7, 200_000) {
                est.observe(x);
            }
            let got = est.estimate().unwrap();
            assert!((got - expected).abs() < 0.01, "q={q}: {got}");
        }
    }

    #[test]
    fn matches_exact_percentile_on_a_replayable_stream() {
        let xs: Vec<f64> = uniform_stream(42, 50_000).map(|x| x * 100.0).collect();
        let mut p95 = StreamingQuantile::new(0.95);
        for &x in &xs {
            p95.observe(x);
        }
        let exact = crate::percentile(&xs, 95.0).unwrap();
        let streamed = p95.estimate().unwrap();
        assert!(
            (streamed - exact).abs() < 1.0,
            "streamed {streamed} vs exact {exact}"
        );
    }

    #[test]
    fn tracks_shifted_distributions() {
        let mut med = StreamingQuantile::new(0.5);
        for x in uniform_stream(3, 100_000) {
            med.observe(1000.0 + x);
        }
        let got = med.estimate().unwrap();
        assert!((got - 1000.5).abs() < 0.01, "{got}");
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn out_of_range_quantile_panics() {
        let _ = StreamingQuantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_observation_panics() {
        StreamingQuantile::new(0.5).observe(f64::NAN);
    }
}
