//! Plain-text table rendering for experiment results.

use crate::runner::ConfigResult;

/// The stacked-legend order of the paper's figures (bottom to top);
/// unknown kinds are appended alphabetically.
pub const KIND_ORDER: &[&str] = &[
    "DecideLocsReq",
    "DecideLocsRep",
    "StoreMetadataReq",
    "StoreMetadataRep",
    "StoreFragmentReq",
    "StoreFragmentRep",
    "AMRIndication",
    "KLSConvergeReq",
    "KLSConvergeRep",
    "FSConvergeReq",
    "FSConvergeRep",
    "RetrieveFragReq",
    "RetrieveFragRep",
    "SiblingStoreReq",
    "FSDecideLocsReq",
    "LocsIndication",
    "RetrieveTsReq",
    "RetrieveTsRep",
];

/// What a table's cells show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Mean message count.
    Count,
    /// Mean message bytes, reported in MiB (the paper's 2²⁰-byte unit).
    Bytes,
}

fn kind_rank(kind: &str) -> (usize, &str) {
    match KIND_ORDER.iter().position(|&k| k == kind) {
        Some(i) => (i, kind),
        None => (KIND_ORDER.len(), kind),
    }
}

/// Renders a per-kind breakdown table: one row per message kind, one
/// column per configuration, plus a TOTAL row with 95 % confidence
/// half-widths.
pub fn render(title: &str, results: &[ConfigResult], unit: Unit) -> String {
    let mut kinds: Vec<&'static str> = results
        .iter()
        .flat_map(|r| r.kind_counts.keys().copied())
        .collect();
    kinds.sort_by_key(|k| kind_rank(k));
    kinds.dedup();

    let cell = |r: &ConfigResult, kind: &str| -> f64 {
        let map = match unit {
            Unit::Count => &r.kind_counts,
            Unit::Bytes => &r.kind_bytes,
        };
        map.get(kind).map_or(0.0, |s| s.mean)
    };
    let scale = match unit {
        Unit::Count => 1.0,
        Unit::Bytes => (1 << 20) as f64,
    };

    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let label_w = kinds
        .iter()
        .map(|k| k.len())
        .chain(["TOTAL".len(), "kind".len()])
        .max()
        .unwrap_or(8);
    let col_w = results
        .iter()
        .map(|r| r.label.len().max(10))
        .collect::<Vec<_>>();

    out.push_str(&format!("{:label_w$}", "kind"));
    for (r, w) in results.iter().zip(&col_w) {
        out.push_str(&format!("  {:>w$}", r.label, w = w));
    }
    out.push('\n');

    for kind in &kinds {
        let values: Vec<f64> = results.iter().map(|r| cell(r, kind)).collect();
        if values.iter().all(|&v| v == 0.0) {
            continue;
        }
        out.push_str(&format!("{kind:label_w$}"));
        for (v, w) in values.iter().zip(&col_w) {
            out.push_str(&format!("  {:>w$.1}", v / scale, w = w));
        }
        out.push('\n');
    }

    out.push_str(&format!("{:label_w$}", "TOTAL"));
    for (r, w) in results.iter().zip(&col_w) {
        let s = match unit {
            Unit::Count => r.total_count,
            Unit::Bytes => r.total_bytes,
        };
        out.push_str(&format!("  {:>w$.1}", s.mean / scale, w = w));
    }
    out.push('\n');
    out.push_str(&format!("{:label_w$}", "±95% CI"));
    for (r, w) in results.iter().zip(&col_w) {
        let s = match unit {
            Unit::Count => r.total_count,
            Unit::Bytes => r.total_bytes,
        };
        out.push_str(&format!("  {:>w$.1}", s.ci95_half_width / scale, w = w));
    }
    out.push('\n');
    out
}

/// Renders the same per-kind breakdown as CSV (kind per row, one column
/// per configuration, raw units — counts or bytes), for plotting.
pub fn render_csv(results: &[ConfigResult], unit: Unit) -> String {
    let mut kinds: Vec<&'static str> = results
        .iter()
        .flat_map(|r| r.kind_counts.keys().copied())
        .collect();
    kinds.sort_by_key(|k| kind_rank(k));
    kinds.dedup();

    let mut out = String::from("kind");
    for r in results {
        out.push(',');
        out.push_str(&r.label);
    }
    out.push('\n');
    for kind in &kinds {
        out.push_str(kind);
        for r in results {
            let map = match unit {
                Unit::Count => &r.kind_counts,
                Unit::Bytes => &r.kind_bytes,
            };
            out.push_str(&format!(",{}", map.get(kind).map_or(0.0, |s| s.mean)));
        }
        out.push('\n');
    }
    out.push_str("TOTAL");
    for r in results {
        let s = match unit {
            Unit::Count => r.total_count,
            Unit::Bytes => r.total_bytes,
        };
        out.push_str(&format!(",{}", s.mean));
    }
    out.push('\n');
    out
}

/// Renders run-level statistics (convergence time, puts attempted, drop
/// totals split by cause, background repair bytes) as a compact
/// companion table. The repair-bytes column stays zero for repair-off
/// configurations — the engine is opt-in and the column makes its
/// silence visible.
pub fn render_run_stats(results: &[ConfigResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:12}  {:>12}  {:>14}  {:>13}  {:>14}  {:>12}  {:>10}\n",
        "config",
        "sim time (s)",
        "puts attempted",
        "fault drops",
        "random drops",
        "repair bytes",
        "converged"
    ));
    for r in results {
        let repair_bytes = r.event_counts.get("repair_bytes").map_or(0.0, |s| s.mean);
        out.push_str(&format!(
            "{:12}  {:>12.1}  {:>14.1}  {:>13.1}  {:>14.1}  {:>12.1}  {:>10}\n",
            r.label,
            r.sim_secs.mean,
            r.puts_attempted.mean,
            r.dropped_fault.mean,
            r.dropped_random.mean,
            repair_bytes,
            if r.all_converged { "yes" } else { "NO" },
        ));
    }
    out
}

/// Renders the dense protocol event counters (the delta-codec ledger:
/// `deltas_encoded`, `delta_fallbacks`, `delta_bytes_saved`, ...): one
/// row per counter, one mean-per-run cell per configuration. Counters
/// that stayed zero everywhere are elided; returns an empty string when
/// no configuration recorded any event (e.g. delta coding off).
pub fn render_events(title: &str, results: &[ConfigResult]) -> String {
    let mut labels: Vec<&'static str> = results
        .iter()
        .flat_map(|r| r.event_counts.keys().copied())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    let cell = |r: &ConfigResult, label: &str| -> f64 {
        r.event_counts.get(label).map_or(0.0, |s| s.mean)
    };
    labels.retain(|l| results.iter().any(|r| cell(r, l) > 0.0));
    if labels.is_empty() {
        return String::new();
    }

    let label_w = labels
        .iter()
        .map(|l| l.len())
        .chain(["event".len()])
        .max()
        .unwrap_or(8);
    let col_w = results
        .iter()
        .map(|r| r.label.len().max(12))
        .collect::<Vec<_>>();

    let mut out = String::new();
    out.push_str(&format!("## {title} (mean per run)\n"));
    out.push_str(&format!("{:label_w$}", "event"));
    for (r, w) in results.iter().zip(&col_w) {
        out.push_str(&format!("  {:>w$}", r.label, w = w));
    }
    out.push('\n');
    for label in &labels {
        out.push_str(&format!("{label:label_w$}"));
        for (r, w) in results.iter().zip(&col_w) {
            out.push_str(&format!("  {:>w$.1}", cell(r, label), w = w));
        }
        out.push('\n');
    }
    out
}

/// Renders the repair-engine ledger (`repair_triggered`,
/// `repair_completed`, `repair_bytes`, ..., plus `degraded_reads`): one
/// row per counter, one mean-per-run cell per configuration. The same
/// shape as [`render_events`] but restricted to the repair actor's
/// counters so repair activity reads as one table even when the delta
/// ledger is also live. Returns an empty string when no configuration
/// ran the repair engine.
pub fn render_repair(title: &str, results: &[ConfigResult]) -> String {
    let mut labels: Vec<&'static str> = results
        .iter()
        .flat_map(|r| r.event_counts.keys().copied())
        .filter(|l| l.starts_with("repair_") || *l == "degraded_reads")
        .collect();
    labels.sort_unstable();
    labels.dedup();
    let cell = |r: &ConfigResult, label: &str| -> f64 {
        r.event_counts.get(label).map_or(0.0, |s| s.mean)
    };
    labels.retain(|l| results.iter().any(|r| cell(r, l) > 0.0));
    if labels.is_empty() {
        return String::new();
    }

    let label_w = labels
        .iter()
        .map(|l| l.len())
        .chain(["counter".len()])
        .max()
        .unwrap_or(8);
    let col_w = results
        .iter()
        .map(|r| r.label.len().max(12))
        .collect::<Vec<_>>();

    let mut out = String::new();
    out.push_str(&format!("## {title} (mean per run)\n"));
    out.push_str(&format!("{:label_w$}", "counter"));
    for (r, w) in results.iter().zip(&col_w) {
        out.push_str(&format!("  {:>w$}", r.label, w = w));
    }
    out.push('\n');
    for label in &labels {
        out.push_str(&format!("{label:label_w$}"));
        for (r, w) in results.iter().zip(&col_w) {
            out.push_str(&format!("  {:>w$.1}", cell(r, label), w = w));
        }
        out.push('\n');
    }
    out
}

/// Renders the per-kind dropped-message breakdown: one row per message
/// kind, one `fault/random` cell per configuration. Kinds that were never
/// dropped anywhere are elided; returns an empty string when nothing was
/// dropped at all (failure-free configurations).
pub fn render_drops(title: &str, results: &[ConfigResult]) -> String {
    let mut kinds: Vec<&'static str> = results
        .iter()
        .flat_map(|r| r.kind_drops.keys().copied())
        .collect();
    kinds.sort_by_key(|k| kind_rank(k));
    kinds.dedup();
    let cell = |r: &ConfigResult, kind: &str| -> (f64, f64) {
        r.kind_drops
            .get(kind)
            .map_or((0.0, 0.0), |d| (d.fault.mean, d.random.mean))
    };
    kinds.retain(|k| {
        results.iter().any(|r| {
            let (f, rnd) = cell(r, k);
            f > 0.0 || rnd > 0.0
        })
    });
    if kinds.is_empty() {
        return String::new();
    }

    let label_w = kinds
        .iter()
        .map(|k| k.len())
        .chain(["TOTAL".len(), "kind".len()])
        .max()
        .unwrap_or(8);
    let col_w = results
        .iter()
        .map(|r| r.label.len().max(15))
        .collect::<Vec<_>>();

    let mut out = String::new();
    out.push_str(&format!("## {title} (mean drops: fault/random)\n"));
    out.push_str(&format!("{:label_w$}", "kind"));
    for (r, w) in results.iter().zip(&col_w) {
        out.push_str(&format!("  {:>w$}", r.label, w = w));
    }
    out.push('\n');
    for kind in &kinds {
        out.push_str(&format!("{kind:label_w$}"));
        for (r, w) in results.iter().zip(&col_w) {
            let (f, rnd) = cell(r, kind);
            out.push_str(&format!("  {:>w$}", format!("{f:.1}/{rnd:.1}"), w = w));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:label_w$}", "TOTAL"));
    for (r, w) in results.iter().zip(&col_w) {
        out.push_str(&format!(
            "  {:>w$}",
            format!("{:.1}/{:.1}", r.dropped_fault.mean, r.dropped_random.mean),
            w = w
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idealized;
    use pahoehoe::cluster::ClusterLayout;
    use pahoehoe::Policy;

    fn sample() -> Vec<ConfigResult> {
        vec![idealized::as_config_result(
            ClusterLayout {
                dcs: 2,
                kls_per_dc: 2,
                fs_per_dc: 3,
            },
            Policy::paper_default(),
            100 * 1024,
            100,
        )]
    }

    #[test]
    fn render_contains_kinds_and_totals() {
        let t = render("Figure 5", &sample(), Unit::Count);
        assert!(t.contains("Figure 5"));
        assert!(t.contains("StoreFragmentReq"));
        assert!(t.contains("TOTAL"));
        assert!(t.contains("3600"), "{t}");
        // Zero-valued kinds are elided.
        assert!(!t.contains("SiblingStoreReq"));
    }

    #[test]
    fn byte_table_uses_mib() {
        let t = render("bytes", &sample(), Unit::Bytes);
        // 100 puts x ~300 KiB fragments ≈ 29.3 MiB total.
        let total_line = t
            .lines()
            .find(|l| l.starts_with("TOTAL"))
            .expect("total row");
        let v: f64 = total_line
            .split_whitespace()
            .nth(1)
            .expect("value")
            .parse()
            .expect("numeric");
        assert!((25.0..35.0).contains(&v), "{v}");
    }

    #[test]
    fn csv_has_header_and_total() {
        let t = render_csv(&sample(), Unit::Count);
        let mut lines = t.lines();
        assert_eq!(lines.next(), Some("kind,Idealized"));
        let total = t.lines().last().expect("total row");
        assert!(total.starts_with("TOTAL,"), "{total}");
        assert!(total.contains("3600"), "{total}");
        // Every data row has exactly one comma (one config column).
        for line in t.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 1, "{line}");
        }
    }

    #[test]
    fn run_stats_render() {
        let t = render_run_stats(&sample());
        assert!(t.contains("Idealized"));
        assert!(t.contains("yes"));
        assert!(t.contains("fault drops"));
        assert!(t.contains("random drops"));
        assert!(t.contains("repair bytes"));
    }

    #[test]
    fn repair_table_filters_the_repair_ledger() {
        // No repair engine ran: the table must vanish.
        assert_eq!(render_repair("clean", &sample()), "");

        // Synthesize a configuration whose runs recorded repair activity
        // alongside an unrelated dense counter: only the repair ledger
        // (and degraded reads) may appear.
        let mut results = sample();
        let constant = |v: f64| -> stats::Summary {
            [v].into_iter().collect::<stats::Accumulator>().summary()
        };
        let r = &mut results[0];
        r.event_counts.insert("repair_triggered", constant(8.0));
        r.event_counts.insert("repair_bytes", constant(98304.0));
        r.event_counts.insert("degraded_reads", constant(3.0));
        r.event_counts.insert("deltas_encoded", constant(5.0));
        let t = render_repair("repair", &results);
        assert!(t.contains("repair_triggered"), "{t}");
        assert!(t.contains("repair_bytes"), "{t}");
        assert!(t.contains("degraded_reads"), "{t}");
        assert!(!t.contains("deltas_encoded"), "{t}");

        // And the run-stats companion column picks up the mean.
        let s = render_run_stats(&results);
        assert!(s.contains("98304.0"), "{s}");
    }

    #[test]
    fn drops_table_elides_clean_runs_and_splits_causes() {
        // The idealized bound drops nothing: the table must vanish.
        assert_eq!(render_drops("clean", &sample()), "");

        // A lossy faulted run must produce per-kind fault/random cells.
        let mut cfg = pahoehoe::cluster::ClusterConfig::paper_default();
        cfg.workload_puts = 2;
        cfg.workload_value_len = 2048;
        cfg.network.drop_rate = 0.1;
        let layout = cfg.layout;
        let reports = crate::runner::run_many(0..2, |seed| {
            let mut faults = simnet::FaultPlan::none();
            faults.add_node_outage(
                layout.fs(0, 0),
                simnet::SimTime::ZERO,
                simnet::SimDuration::from_secs(30),
            );
            pahoehoe::cluster::Cluster::build_with_faults(cfg.clone(), seed, faults)
        });
        let agg = crate::runner::aggregate("Lossy", &reports);
        assert!(agg.dropped_random.mean > 0.0, "10% loss drops something");
        let t = render_drops("lossy", std::slice::from_ref(&agg));
        assert!(t.contains("fault/random"), "{t}");
        assert!(t.contains("TOTAL"), "{t}");
        assert!(t.contains('/'), "{t}");
    }

    #[test]
    fn events_table_surfaces_delta_counters() {
        // The idealized bound records no protocol events: the table must
        // vanish.
        assert_eq!(render_events("clean", &sample()), "");

        // A delta-mode overwrite run (two workload rounds: the second
        // round re-puts every key) must surface the delta-codec ledger.
        let mut cfg = pahoehoe::cluster::ClusterConfig::paper_default();
        cfg.workload_puts = 2;
        cfg.workload_value_len = 2048;
        cfg.workload_rounds = 2;
        cfg.protocol = pahoehoe::protocol::ProtocolMode::delta();
        let reports = crate::runner::run_many(0..2, |seed| {
            pahoehoe::cluster::Cluster::build(cfg.clone(), seed)
        });
        let agg = crate::runner::aggregate("Delta", &reports);
        assert!(
            agg.event_counts["deltas_encoded"].mean > 0.0,
            "{:?}",
            agg.event_counts
        );
        let t = render_events("delta", std::slice::from_ref(&agg));
        assert!(t.contains("deltas_encoded"), "{t}");
        assert!(t.contains("delta_bytes_saved"), "{t}");
        assert!(t.contains("stripe_cache_hits"), "{t}");
    }

    #[test]
    fn kind_order_is_stable() {
        assert!(kind_rank("DecideLocsReq").0 < kind_rank("AMRIndication").0);
        assert_eq!(kind_rank("Zebra").0, KIND_ORDER.len());
    }
}
