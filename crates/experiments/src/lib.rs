#![warn(missing_docs)]

//! Experiment harness regenerating every figure of the Pahoehoe DSN 2010
//! evaluation (§5).
//!
//! Each paper figure has a module building its scenario matrix and a
//! binary printing its table:
//!
//! | Paper figure | Module / binary | What it reports |
//! |---|---|---|
//! | Fig. 5 | [`figures::fig5`] / `fig5` | failure-free message counts per optimization, incl. the analytic *Idealized* bound |
//! | Fig. 6 | [`figures::fig6_7`] / `fig6_7` | message counts vs. number of unavailable FSs |
//! | Fig. 7 | same | message bytes for the same sweep |
//! | Fig. 8 | [`figures::fig8`] / `fig8` | message bytes vs. unavailable KLSs (incl. the 2C/2P split) |
//! | Fig. 9 | [`figures::fig9`] / `fig9` | lossy network: puts attempted, excess-AMR and non-durable versions vs. drop rate |
//!
//! Methodology follows §5.1: the standard workload is 100 puts of 100 KiB
//! objects under the default `(4, 12)` policy on a 2×(2 KLS + 3 FS)
//! cluster; every experiment runs until all object versions that can
//! achieve AMR do so; results are means over 50 seeded trials (150 for the
//! lossy sweep) with 95 % confidence intervals; client↔proxy traffic is
//! excluded from all message accounting.

pub mod figures;
pub mod idealized;
pub mod runner;
pub mod table;

pub use figures::{FigureOptions, LossyPoint};
pub use runner::{aggregate, run_many, ConfigResult};
