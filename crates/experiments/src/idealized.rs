//! The analytic *Idealized* implementation of Figure 5.
//!
//! The paper compares its protocols against "an Idealized implementation
//! … one that knows this is a failure-free execution and so can send the
//! absolute minimum number of messages to reach AMR", calculated
//! analytically (§5.2):
//!
//! * one KLS per data center receives a locations request, which elicits
//!   one response;
//! * the proxy sends each of the four KLSs the chosen locations, to which
//!   each sends one response;
//! * it also sends each of the six FSs two store-fragment requests (one
//!   per sibling fragment), for which each FS sends **one** response and
//!   receives an AMR indication.
//!
//! We reproduce that calculation with the same wire-size model the
//! simulated protocols use, so byte totals are comparable.

use std::collections::BTreeMap;

use pahoehoe::cluster::ClusterLayout;
use pahoehoe::kls::Kls;
use pahoehoe::messages::Message;
use pahoehoe::metadata::Metadata;
use pahoehoe::policy::Policy;
use pahoehoe::topology::{DataCenterId, Topology};
use pahoehoe::types::{Key, ObjectVersion, Timestamp};
use simnet::{Payload, SimTime};
use stats::Accumulator;

use crate::runner::ConfigResult;

/// Per-kind `(count, bytes)` for one idealized put.
pub fn per_put(
    layout: ClusterLayout,
    policy: Policy,
    value_len: usize,
) -> BTreeMap<&'static str, (u64, u64)> {
    let topo = Topology::new(
        (0..layout.dcs)
            .map(|dc| {
                (
                    (0..layout.kls_per_dc).map(|i| layout.kls(dc, i)).collect(),
                    (0..layout.fs_per_dc).map(|i| layout.fs(dc, i)).collect(),
                )
            })
            .collect(),
    );
    let ov = ObjectVersion::new(Key::from_u64(1), Timestamp::new(SimTime::ZERO, 0));
    let home = DataCenterId::new(0);
    let mut meta = Metadata::new(policy, home, value_len);
    for dc in topo.dc_ids() {
        meta.add_dc_locations(dc, Kls::which_locs(&topo, dc, ov, &policy));
    }
    assert!(meta.is_complete());
    let meta = std::sync::Arc::new(meta);

    let frag_len = value_len.div_ceil(usize::from(policy.k));
    let fragment = erasure::Fragment::new(0, vec![0u8; frag_len]);

    let klss = topo.all_klss().count() as u64;
    let dcs = layout.dcs as u64;
    let fss = topo.all_fss().count() as u64;
    let frags = u64::from(policy.n);

    let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut add = |msg: Message, count: u64| {
        let e = out.entry(msg.kind()).or_insert((0, 0));
        e.0 += count;
        e.1 += count * msg.wire_size() as u64;
    };

    // One locations round trip per data center.
    add(
        Message::DecideLocs {
            ov,
            policy,
            home_dc: home,
        },
        dcs,
    );
    add(
        Message::DecideLocsReply {
            ov,
            dc: home,
            locations: meta.dc_locations(home).expect("complete").to_vec(),
        },
        dcs,
    );
    // Chosen locations to every KLS, one response each.
    add(
        Message::StoreMetadata {
            ov,
            meta: meta.clone(),
        },
        klss,
    );
    add(Message::StoreMetadataReply { ov, complete: true }, klss);
    // Every fragment stored once; one response per FS; one AMR indication
    // per FS.
    add(
        Message::StoreFragment {
            ov,
            meta: meta.clone(),
            fragment: fragment.clone(),
        },
        frags,
    );
    add(Message::StoreFragmentReply { ov, fragment: 0 }, fss);
    add(
        Message::AmrIndication {
            ov,
            meta: meta.clone(),
        },
        fss,
    );
    out
}

/// The idealized bound as a [`ConfigResult`] for `puts` puts, so it can
/// sit alongside measured configurations in the Figure 5 table.
pub fn as_config_result(
    layout: ClusterLayout,
    policy: Policy,
    value_len: usize,
    puts: u64,
) -> ConfigResult {
    let per = per_put(layout, policy, value_len);
    let mut kind_counts = BTreeMap::new();
    let mut kind_bytes = BTreeMap::new();
    let mut total_c = 0u64;
    let mut total_b = 0u64;
    for (k, (c, b)) in &per {
        let (c, b) = (c * puts, b * puts);
        kind_counts.insert(*k, constant(c as f64));
        kind_bytes.insert(*k, constant(b as f64));
        total_c += c;
        total_b += b;
    }
    ConfigResult {
        label: "Idealized".to_string(),
        kind_counts,
        kind_bytes,
        kind_drops: BTreeMap::new(),
        event_counts: BTreeMap::new(),
        dropped_fault: constant(0.0),
        dropped_random: constant(0.0),
        total_count: constant(total_c as f64),
        total_bytes: constant(total_b as f64),
        sim_secs: constant(0.0),
        puts_attempted: constant(puts as f64),
        excess_amr: constant(0.0),
        non_durable: constant(0.0),
        all_converged: true,
    }
}

fn constant(v: f64) -> stats::Summary {
    let acc: Accumulator = [v].into_iter().collect();
    acc.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_layout() -> ClusterLayout {
        ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        }
    }

    #[test]
    fn matches_the_papers_arithmetic() {
        // 2+2 decide, 4+4 metadata, 12 fragment stores + 6 replies,
        // 6 indications = 36 messages per put.
        let per = per_put(paper_layout(), Policy::paper_default(), 100 * 1024);
        let total: u64 = per.values().map(|(c, _)| c).sum();
        assert_eq!(total, 36);
        assert_eq!(per["DecideLocsReq"].0, 2);
        assert_eq!(per["DecideLocsRep"].0, 2);
        assert_eq!(per["StoreMetadataReq"].0, 4);
        assert_eq!(per["StoreMetadataRep"].0, 4);
        assert_eq!(per["StoreFragmentReq"].0, 12);
        assert_eq!(per["StoreFragmentRep"].0, 6);
        assert_eq!(per["AMRIndication"].0, 6);
    }

    #[test]
    fn bytes_are_dominated_by_fragments() {
        let per = per_put(paper_layout(), Policy::paper_default(), 100 * 1024);
        let frag_bytes = per["StoreFragmentReq"].1;
        let total: u64 = per.values().map(|(_, b)| b).sum();
        // 12 x 25 KiB of fragment payload ≈ 300 KiB.
        assert!(frag_bytes > 12 * 25 * 1024);
        assert!(frag_bytes as f64 / total as f64 > 0.95);
    }

    #[test]
    fn config_result_scales_with_put_count() {
        let one = as_config_result(paper_layout(), Policy::paper_default(), 100 * 1024, 1);
        let hundred = as_config_result(paper_layout(), Policy::paper_default(), 100 * 1024, 100);
        assert_eq!(one.total_count.mean * 100.0, hundred.total_count.mean);
        assert_eq!(hundred.total_count.mean, 3600.0);
        assert!(hundred.all_converged);
    }
}
