//! Ablations over the convergence tunables DESIGN.md calls out, measured
//! in the currency the paper cares about — messages and bytes — plus
//! time-to-full-redundancy. Scenario: the Figure 6/7 "2 FSs down for ten
//! minutes" workload with all optimizations enabled, varying one knob at
//! a time.
//!
//! Usage: `cargo run -p experiments --release --bin ablations [--quick]`

use experiments::figures::{fs_outage, paper_layout, FigureOptions};
use experiments::runner::{aggregate, run_many};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::convergence::ConvergenceOptions;
use simnet::SimDuration;
use stats::Accumulator;

fn run_knob(
    label: &str,
    opts: FigureOptions,
    conv: ConvergenceOptions,
) -> (String, f64, f64, f64, f64) {
    let layout = paper_layout();
    let reports = run_many(1..opts.seeds + 1, |seed| {
        let mut cfg = ClusterConfig::paper_default();
        cfg.workload_puts = opts.puts;
        cfg.workload_value_len = opts.value_len;
        cfg.convergence = conv.clone();
        Cluster::build_with_faults(cfg, seed, fs_outage(layout, 2))
    });
    let agg = aggregate(label, &reports);
    let mut amr_p95 = Accumulator::new();
    for r in &reports {
        if let Some(d) = stats::percentile(
            &r.time_to_amr
                .iter()
                .map(|d| d.as_secs_f64())
                .collect::<Vec<_>>(),
            95.0,
        ) {
            amr_p95.push(d);
        }
    }
    (
        label.to_string(),
        agg.total_count.mean,
        agg.total_bytes.mean / (1 << 20) as f64,
        agg.sim_secs.mean,
        amr_p95.mean(),
    )
}

fn print_rows(title: &str, rows: &[(String, f64, f64, f64, f64)]) {
    println!("\n## {title}");
    println!(
        "{:24} {:>10} {:>10} {:>12} {:>16}",
        "variant", "msgs", "MiB", "sim time(s)", "p95 t-to-AMR(s)"
    );
    for (label, msgs, mib, secs, p95) in rows {
        println!("{label:24} {msgs:>10.0} {mib:>10.1} {secs:>12.1} {p95:>16.1}");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        FigureOptions::quick()
    } else {
        FigureOptions {
            seeds: 20,
            ..FigureOptions::paper()
        }
    };
    eprintln!(
        "ablations: {} puts x {} KiB, {} seeds per variant, 2 FSs down ...",
        opts.puts,
        opts.value_len / 1024,
        opts.seeds
    );

    // Exponential backoff base: too eager re-probes a dead server; too
    // lazy delays the repair after it heals.
    let rows: Vec<_> = [15u64, 60, 240]
        .into_iter()
        .map(|base| {
            let mut conv = ConvergenceOptions::all();
            conv.backoff_base = SimDuration::from_secs(base);
            run_knob(&format!("backoff_base={base}s"), opts, conv)
        })
        .collect();
    print_rows("Backoff base (paper: 60s, doubling, capped)", &rows);

    // Convergence round interval (paper: uniform 30-90 s).
    let rows: Vec<_> = [(5u64, 15u64), (30, 90), (120, 360)]
        .into_iter()
        .map(|(lo, hi)| {
            let mut conv = ConvergenceOptions::all();
            conv.round_min = SimDuration::from_secs(lo);
            conv.round_max = SimDuration::from_secs(hi);
            run_knob(&format!("rounds={lo}-{hi}s"), opts, conv)
        })
        .collect();
    print_rows("Round interval (paper: 30-90s)", &rows);

    // Sibling-recovery accumulation window (paper: "waits some time").
    let rows: Vec<_> = [50u64, 500, 2000]
        .into_iter()
        .map(|ms| {
            let mut conv = ConvergenceOptions::all();
            conv.recovery_wait = SimDuration::from_millis(ms);
            run_knob(&format!("recovery_wait={ms}ms"), opts, conv)
        })
        .collect();
    print_rows("Sibling-recovery accumulation window", &rows);

    // Minimum version age before FS-initiated convergence (paper: 300 s).
    let rows: Vec<_> = [0u64, 60, 300, 900]
        .into_iter()
        .map(|secs| {
            let mut conv = ConvergenceOptions::all();
            conv.min_age = SimDuration::from_secs(secs);
            run_knob(&format!("min_age={secs}s"), opts, conv)
        })
        .collect();
    print_rows("Minimum age before convergence (paper: 300s)", &rows);
}
