//! Regenerates **Figure 8** of the paper: message bytes during
//! convergence as KLSs become unavailable — including the paper's split
//! between `2C` (one KLS down per data center; network stays connected)
//! and `2P` (both KLSs of one data center down; effectively a WAN
//! partition for metadata).
//!
//! Usage: `cargo run -p experiments --release --bin fig8 [--quick]`

use experiments::figures::{fig8, FigureOptions};
use experiments::table::{render, render_csv, render_drops, render_repair, render_run_stats, Unit};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let opts = if quick {
        FigureOptions::quick()
    } else {
        FigureOptions::paper()
    };
    eprintln!(
        "fig8: {} puts x {} KiB, {} seeds x 22 configs ...",
        opts.puts,
        opts.value_len / 1024,
        opts.seeds
    );
    let results = fig8(opts);
    println!(
        "{}",
        render(
            "Figure 8 - KLS failures, message MiB",
            &results,
            Unit::Bytes
        )
    );
    println!(
        "{}",
        render(
            "Figure 8 (companion) - KLS failures, message count",
            &results,
            Unit::Count
        )
    );
    println!("{}", render_run_stats(&results));
    let drops = render_drops("Figure 8 - messages lost to KLS outages", &results);
    if !drops.is_empty() {
        println!("{drops}");
    }
    let repair = render_repair("Figure 8 - repair-engine ledger", &results);
    if !repair.is_empty() {
        println!("{repair}");
    }
    if csv {
        std::fs::write("fig8_bytes.csv", render_csv(&results, Unit::Bytes))
            .expect("write fig8_bytes.csv");
        eprintln!("wrote fig8_bytes.csv");
    }
}
