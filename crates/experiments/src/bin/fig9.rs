//! Regenerates **Figure 9** of the paper: convergence under a lossy
//! network — puts attempted to reach the workload's successes (with
//! low/high whiskers), excess-AMR object versions, and non-durable object
//! versions, as the system-wide message drop rate sweeps 0–15 %.
//!
//! Usage: `cargo run -p experiments --release --bin fig9 [--quick]`

use experiments::figures::{fig9, paper_drop_rates, FigureOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut opts = if quick {
        FigureOptions::quick()
    } else {
        FigureOptions::paper()
    };
    if !quick {
        opts.seeds = 150; // the paper runs the lossy sweep 150 times
    }
    let rates = if quick {
        vec![0.0, 0.05, 0.10]
    } else {
        paper_drop_rates()
    };
    eprintln!(
        "fig9: {} puts x {} KiB, {} seeds x {} drop rates ...",
        opts.puts,
        opts.value_len / 1024,
        opts.seeds,
        rates.len()
    );
    let points = fig9(opts, &rates);
    println!("## Figure 9 - convergence and a lossy network");
    println!(
        "{:>9}  {:>14}  {:>13}  {:>12}  {:>12}  {:>9}",
        "drop rate", "puts attempted", "low..high", "excess AMR", "non-durable", "converged"
    );
    for p in &points {
        println!(
            "{:>8.1}%  {:>14.1}  {:>6.0}..{:<6.0}  {:>12.2}  {:>12.2}  {:>9}",
            p.drop_rate * 100.0,
            p.attempts.mean,
            p.attempts_low_high.0,
            p.attempts_low_high.1,
            p.excess_amr.mean,
            p.non_durable.mean,
            if p.all_converged { "yes" } else { "NO" },
        );
    }
}
