//! Regenerates **Figures 6 and 7** of the paper: message count and
//! message bytes during convergence as 0–4 fragment servers are
//! unavailable for ten minutes, under each optimization setting
//! (PutAMR / FSAMR / Sibling / All).
//!
//! Usage: `cargo run -p experiments --release --bin fig6_7 [--quick]`

use experiments::figures::{fig6_7, FigureOptions};
use experiments::table::{render, render_csv, render_run_stats, Unit};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let opts = if quick {
        FigureOptions::quick()
    } else {
        FigureOptions::paper()
    };
    eprintln!(
        "fig6_7: {} puts x {} KiB, {} seeds x 22 configs ...",
        opts.puts,
        opts.value_len / 1024,
        opts.seeds
    );
    let results = fig6_7(opts);
    println!(
        "{}",
        render(
            "Figure 6 - FS failures, message count",
            &results,
            Unit::Count
        )
    );
    println!(
        "{}",
        render("Figure 7 - FS failures, message MiB", &results, Unit::Bytes)
    );
    println!("{}", render_run_stats(&results));
    if csv {
        std::fs::write("fig6_counts.csv", render_csv(&results, Unit::Count))
            .expect("write fig6_counts.csv");
        std::fs::write("fig7_bytes.csv", render_csv(&results, Unit::Bytes))
            .expect("write fig7_bytes.csv");
        eprintln!("wrote fig6_counts.csv, fig7_bytes.csv");
    }
}
