//! Regenerates **Figure 5** of the paper: failure-free execution —
//! message count (and bytes) per convergence-optimization level, compared
//! against the analytic Idealized bound.
//!
//! Usage: `cargo run -p experiments --release --bin fig5 [--quick]`

use experiments::figures::{fig5, FigureOptions};
use experiments::table::{render, render_csv, render_events, render_run_stats, Unit};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let opts = if quick {
        FigureOptions::quick()
    } else {
        FigureOptions::paper()
    };
    eprintln!(
        "fig5: {} puts x {} KiB, {} seeds per config ...",
        opts.puts,
        opts.value_len / 1024,
        opts.seeds
    );
    let results = fig5(opts);
    println!(
        "{}",
        render(
            "Figure 5 - failure-free execution, message count",
            &results,
            Unit::Count
        )
    );
    println!(
        "{}",
        render(
            "Figure 5 (companion) - failure-free execution, message MiB",
            &results,
            Unit::Bytes
        )
    );
    println!("{}", render_run_stats(&results));
    // Non-empty only when a configuration recorded protocol events
    // (e.g. the delta-codec ledger under `set_delta_coding`).
    let events = render_events("Figure 5 - protocol event counters", &results);
    if !events.is_empty() {
        println!("{events}");
    }
    if csv {
        std::fs::write("fig5_counts.csv", render_csv(&results, Unit::Count))
            .expect("write fig5_counts.csv");
        std::fs::write("fig5_bytes.csv", render_csv(&results, Unit::Bytes))
            .expect("write fig5_bytes.csv");
        eprintln!("wrote fig5_counts.csv, fig5_bytes.csv");
    }

    let naive = results
        .iter()
        .find(|r| r.label == "Naive")
        .expect("naive config present")
        .total_count
        .mean;
    println!("relative to Naive:");
    for r in &results {
        println!(
            "  {:10} {:>7.1}%",
            r.label,
            100.0 * r.total_count.mean / naive
        );
    }
}
