//! Scenario matrices for each paper figure.

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe::convergence::ConvergenceOptions;
use pahoehoe::protocol::ProtocolMode;
use simnet::{FaultPlan, NetworkConfig, SimDuration, SimTime};
use stats::{percentile, Summary};

use crate::idealized;
use crate::runner::{aggregate, run_many, ConfigResult};

/// Sizing knobs shared by every figure.
#[derive(Debug, Clone, Copy)]
pub struct FigureOptions {
    /// Trials per configuration (paper: 50; 150 for the lossy sweep).
    pub seeds: u64,
    /// Puts in the workload (paper: 100).
    pub puts: usize,
    /// Object size in bytes (paper: 100 KiB).
    pub value_len: usize,
}

impl FigureOptions {
    /// The paper's experimental scale.
    pub fn paper() -> Self {
        FigureOptions {
            seeds: 50,
            puts: 100,
            value_len: 100 * 1024,
        }
    }

    /// A reduced scale for tests and Criterion benches.
    pub fn quick() -> Self {
        FigureOptions {
            seeds: 3,
            puts: 20,
            value_len: 16 * 1024,
        }
    }
}

/// The paper's cluster shape.
pub fn paper_layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

fn base_config(opts: FigureOptions, conv: ConvergenceOptions) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = opts.puts;
    cfg.workload_value_len = opts.value_len;
    cfg.convergence = conv;
    cfg
}

fn run_config(
    label: &str,
    opts: FigureOptions,
    conv: ConvergenceOptions,
    protocol: ProtocolMode,
    faults: impl Fn() -> FaultPlan + Send + Sync,
    network: NetworkConfig,
) -> ConfigResult {
    let reports = run_many(1..opts.seeds + 1, |seed| {
        let mut cfg = base_config(opts, conv.clone());
        cfg.network = network.clone();
        cfg.protocol = protocol;
        Cluster::build_with_faults(cfg, seed, faults())
    });
    aggregate(label, &reports)
}

/// The outage used throughout §5.3: all messages in and out of the node
/// dropped for ten minutes starting with the workload.
pub const OUTAGE: SimDuration = SimDuration::from_mins(10);

// ---------------------------------------------------------------- Fig. 5

/// Figure 5: failure-free execution — message count per optimization
/// level, plus the analytic Idealized bound.
pub fn fig5(opts: FigureOptions) -> Vec<ConfigResult> {
    let configs = [
        ("Naive", ConvergenceOptions::naive()),
        ("FSAMR-S", ConvergenceOptions::fs_amr_synchronized()),
        ("FSAMR-U", ConvergenceOptions::fs_amr_unsynchronized()),
        ("PutAMR", ConvergenceOptions::all()),
    ];
    let mut out: Vec<ConfigResult> = configs
        .into_iter()
        .map(|(label, conv)| {
            run_config(
                label,
                opts,
                conv,
                ProtocolMode::optimized(),
                FaultPlan::none,
                NetworkConfig::paper_default(),
            )
        })
        .collect();
    out.push(idealized::as_config_result(
        paper_layout(),
        pahoehoe::Policy::paper_default(),
        opts.value_len,
        opts.puts as u64,
    ));
    out
}

// ----------------------------------------------------------- Figs. 6 & 7

/// The four optimization settings compared in Figures 6–8.
pub fn failure_optimization_matrix() -> Vec<(&'static str, ConvergenceOptions)> {
    vec![
        ("PutAMR", ConvergenceOptions::put_amr()),
        ("FSAMR", ConvergenceOptions::fs_amr_unsynchronized()),
        ("Sibling", ConvergenceOptions::sibling()),
        ("All", ConvergenceOptions::all()),
    ]
}

/// FS outage pattern for `down` unavailable FSs, "roughly balanced
/// between data centers" (§5.3).
pub fn fs_outage(layout: ClusterLayout, down: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for i in 0..down {
        let dc = i % layout.dcs;
        let idx = i / layout.dcs;
        plan.add_node_outage(layout.fs(dc, idx), SimTime::ZERO, OUTAGE);
    }
    plan
}

/// Figures 6 and 7: message counts and bytes as 0–4 FSs are unavailable
/// for ten minutes, for each optimization setting. The `0-All` column is
/// the reference point (same data as Fig. 5's PutAMR bar).
///
/// Beyond the paper's matrix, each outage level also gets a `Batched`
/// column: the `All` setting re-run with [`ProtocolMode::batched`], which
/// coalesces every convergence round's per-destination traffic into
/// multi-entry messages. Event order and AMR outcomes are bit-identical
/// to the `All` column (batching is accounting-only; see
/// [`pahoehoe::protocol`]); only the message counts and header bytes
/// shrink.
pub fn fig6_7(opts: FigureOptions) -> Vec<ConfigResult> {
    let layout = paper_layout();
    let mut out = Vec::new();
    for (label, protocol) in [
        ("0-All", ProtocolMode::optimized()),
        ("0-Batched", ProtocolMode::batched()),
    ] {
        out.push(run_config(
            label,
            opts,
            ConvergenceOptions::all(),
            protocol,
            FaultPlan::none,
            NetworkConfig::paper_default(),
        ));
    }
    for down in 1..=4usize {
        for (name, conv) in failure_optimization_matrix() {
            out.push(run_config(
                &format!("{down}-{name}"),
                opts,
                conv,
                ProtocolMode::optimized(),
                move || fs_outage(layout, down),
                NetworkConfig::paper_default(),
            ));
        }
        out.push(run_config(
            &format!("{down}-Batched"),
            opts,
            ConvergenceOptions::all(),
            ProtocolMode::batched(),
            move || fs_outage(layout, down),
            NetworkConfig::paper_default(),
        ));
    }
    out
}

// ---------------------------------------------------------------- Fig. 8

/// KLS outage patterns of §5.3: `1` (one KLS down), `2C` (one per DC —
/// network stays connected), `2P` (both KLSs of the proxy-remote DC —
/// effectively a WAN partition for metadata), `3`.
pub fn kls_outage(layout: ClusterLayout, pattern: &str) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let mut down = |dc: usize, i: usize| {
        plan.add_node_outage(layout.kls(dc, i), SimTime::ZERO, OUTAGE);
    };
    match pattern {
        "0" => {}
        "1" => down(0, 0),
        "2C" => {
            down(0, 0);
            down(1, 0);
        }
        "2P" => {
            down(1, 0);
            down(1, 1);
        }
        "3" => {
            down(0, 0);
            down(1, 0);
            down(1, 1);
        }
        other => panic!("unknown KLS outage pattern {other:?}"),
    }
    plan
}

/// Figure 8: message bytes as KLSs become unavailable, for each
/// optimization setting. As in [`fig6_7`], each outage pattern gets an
/// extra `Batched` column — the `All` setting with coalesced convergence
/// rounds ([`ProtocolMode::batched`]).
pub fn fig8(opts: FigureOptions) -> Vec<ConfigResult> {
    let layout = paper_layout();
    let mut out = Vec::new();
    for (label, protocol) in [
        ("0-All", ProtocolMode::optimized()),
        ("0-Batched", ProtocolMode::batched()),
    ] {
        out.push(run_config(
            label,
            opts,
            ConvergenceOptions::all(),
            protocol,
            FaultPlan::none,
            NetworkConfig::paper_default(),
        ));
    }
    for pattern in ["1", "2C", "2P", "3"] {
        for (name, conv) in failure_optimization_matrix() {
            out.push(run_config(
                &format!("{pattern}-{name}"),
                opts,
                conv,
                ProtocolMode::optimized(),
                move || kls_outage(layout, pattern),
                NetworkConfig::paper_default(),
            ));
        }
        out.push(run_config(
            &format!("{pattern}-Batched"),
            opts,
            ConvergenceOptions::all(),
            ProtocolMode::batched(),
            move || kls_outage(layout, pattern),
            NetworkConfig::paper_default(),
        ));
    }
    out
}

// ---------------------------------------------------------------- Fig. 9

/// One drop-rate point of the lossy-network sweep.
#[derive(Debug, Clone)]
pub struct LossyPoint {
    /// System-wide message drop rate.
    pub drop_rate: f64,
    /// Put attempts needed for the workload's successes (mean ± CI).
    pub attempts: Summary,
    /// 5th/95th percentile of attempts across trials — the "low to high
    /// range" whiskers of Fig. 9.
    pub attempts_low_high: (f64, f64),
    /// Excess-AMR object versions (converged, but their put was never
    /// acknowledged to the client).
    pub excess_amr: Summary,
    /// Non-durable object versions (fewer than `k` fragments ever stored;
    /// can never reach AMR).
    pub non_durable: Summary,
    /// Whether every trial converged.
    pub all_converged: bool,
}

/// Figure 9: behaviour under a lossy network, drop rates 0–15 %. All
/// optimizations are enabled, as in the paper.
pub fn fig9(opts: FigureOptions, drop_rates: &[f64]) -> Vec<LossyPoint> {
    drop_rates
        .iter()
        .map(|&rate| {
            let reports = run_many(1..opts.seeds + 1, |seed| {
                let mut cfg = base_config(opts, ConvergenceOptions::all());
                cfg.network = NetworkConfig::with_drop_rate(rate);
                Cluster::build(cfg, seed)
            });
            let agg = aggregate(format!("{:.1}%", rate * 100.0), &reports);
            let attempts: Vec<f64> = reports.iter().map(|r| r.puts_attempted as f64).collect();
            LossyPoint {
                drop_rate: rate,
                attempts: agg.puts_attempted,
                attempts_low_high: (
                    percentile(&attempts, 5.0).expect("non-empty"),
                    percentile(&attempts, 95.0).expect("non-empty"),
                ),
                excess_amr: agg.excess_amr,
                non_durable: agg.non_durable,
                all_converged: agg.all_converged,
            }
        })
        .collect()
}

/// The drop rates the paper sweeps (0 % to 15 %).
pub fn paper_drop_rates() -> Vec<f64> {
    vec![0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_outage_is_balanced_across_dcs() {
        let layout = paper_layout();
        let plan = fs_outage(layout, 4);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        // Two FSs down in each DC.
        for dc in 0..2 {
            let down = (0..3)
                .filter(|&i| plan.node_down(layout.fs(dc, i), t))
                .count();
            assert_eq!(down, 2, "dc{dc}");
        }
    }

    #[test]
    fn kls_outage_patterns() {
        let layout = paper_layout();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let down_set = |pattern: &str| -> Vec<(usize, usize)> {
            let plan = kls_outage(layout, pattern);
            let mut v = Vec::new();
            for dc in 0..2 {
                for i in 0..2 {
                    if plan.node_down(layout.kls(dc, i), t) {
                        v.push((dc, i));
                    }
                }
            }
            v
        };
        assert_eq!(down_set("0"), vec![]);
        assert_eq!(down_set("1"), vec![(0, 0)]);
        assert_eq!(down_set("2C"), vec![(0, 0), (1, 0)]);
        assert_eq!(down_set("2P"), vec![(1, 0), (1, 1)], "whole remote DC");
        assert_eq!(down_set("3").len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown KLS outage pattern")]
    fn bogus_pattern_panics() {
        let _ = kls_outage(paper_layout(), "4X");
    }

    /// One-seed miniature for fast structural checks.
    fn mini() -> FigureOptions {
        FigureOptions {
            seeds: 1,
            puts: 5,
            value_len: 4 * 1024,
        }
    }

    #[test]
    fn fig6_7_matrix_shape_and_monotonicity() {
        let results = fig6_7(mini());
        assert_eq!(results.len(), 22, "(0-All + 0-Batched) + 4 x 5 settings");
        assert_eq!(results[0].label, "0-All");
        assert_eq!(results[1].label, "0-Batched");
        assert!(results.iter().all(|r| r.all_converged));
        // Recovery traffic appears once failures do.
        let zero = &results[0];
        assert_eq!(
            zero.kind_counts
                .get("RetrieveFragReq")
                .map_or(0.0, |s| s.mean),
            0.0
        );
        let one_putamr = &results[2];
        assert!(one_putamr.label.starts_with("1-"));
        assert!(
            one_putamr
                .kind_counts
                .get("RetrieveFragReq")
                .is_some_and(|s| s.mean > 0.0),
            "failures force fragment retrievals"
        );
        // Without sibling recovery, retrieval work grows with the number
        // of rebuilding FSs (each retrieves k fragments itself).
        let retrievals = |label: &str| {
            results
                .iter()
                .find(|r| r.label == label)
                .expect("present")
                .kind_counts
                .get("RetrieveFragReq")
                .map_or(0.0, |s| s.mean)
        };
        assert!(retrievals("4-PutAMR") > retrievals("1-PutAMR"));
    }

    #[test]
    fn fig6_7_batched_column_coalesces_without_changing_outcomes() {
        let results = fig6_7(mini());
        let by_label = |l: &str| {
            results
                .iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("{l} missing"))
        };
        for level in ["0", "1", "2", "3", "4"] {
            let all = by_label(&format!("{level}-All"));
            let batched = by_label(&format!("{level}-Batched"));
            // Batching is accounting-only: same events, same virtual time.
            assert_eq!(
                all.sim_secs.mean, batched.sim_secs.mean,
                "level {level}: batching must not change convergence time"
            );
            assert_eq!(
                all.puts_attempted.mean, batched.puts_attempted.mean,
                "level {level}"
            );
            // Coalescing can only shrink the physical message/byte totals.
            assert!(
                batched.total_count.mean <= all.total_count.mean,
                "level {level}: {} > {}",
                batched.total_count.mean,
                all.total_count.mean
            );
            assert!(
                batched.total_bytes.mean <= all.total_bytes.mean,
                "level {level}"
            );
        }
        // Long outages queue many entries per round, so coalescing must
        // actually bite somewhere in the sweep.
        let all4 = by_label("4-All");
        let batched4 = by_label("4-Batched");
        assert!(
            batched4.total_count.mean < all4.total_count.mean,
            "outage-heavy convergence rounds must coalesce: {} vs {}",
            batched4.total_count.mean,
            all4.total_count.mean
        );
    }

    #[test]
    fn fig8_partitioned_case_dominates() {
        let results = fig8(mini());
        assert_eq!(results.len(), 22);
        assert!(results.iter().all(|r| r.all_converged));
        let retrievals = |label: &str| {
            results
                .iter()
                .find(|r| r.label == label)
                .expect("present")
                .kind_counts
                .get("RetrieveFragReq")
                .map_or(0.0, |s| s.mean)
        };
        // The metadata partition (2P) forces fragment recovery that the
        // connected two-failure case (2C) never needs…
        assert_eq!(retrievals("2C-PutAMR"), 0.0);
        assert!(retrievals("2P-PutAMR") > 0.0);
        // …and sibling recovery amortizes the retrievals.
        assert!(retrievals("2P-All") < retrievals("2P-PutAMR"));
    }

    #[test]
    fn fig9_attempts_never_drop_below_successes() {
        let points = fig9(mini(), &[0.0, 0.10]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.all_converged);
            assert!(p.attempts.mean >= 5.0);
            assert!(p.attempts_low_high.0 <= p.attempts_low_high.1);
        }
        assert!(points[1].attempts.mean >= points[0].attempts.mean);
    }

    #[test]
    fn fig5_quick_reproduces_the_ordering() {
        let results = fig5(FigureOptions::quick());
        assert_eq!(results.len(), 5);
        let by_label = |l: &str| {
            results
                .iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("{l} missing"))
                .total_count
                .mean
        };
        let (naive, s, u, put, ideal) = (
            by_label("Naive"),
            by_label("FSAMR-S"),
            by_label("FSAMR-U"),
            by_label("PutAMR"),
            by_label("Idealized"),
        );
        assert!(results.iter().all(|r| r.all_converged));
        // The paper's qualitative ordering (§5.2).
        assert!(s > naive, "FSAMR-S adds overhead: {s} vs {naive}");
        assert!(u < naive, "FSAMR-U saves: {u} vs {naive}");
        assert!(put < u, "PutAMR saves most: {put} vs {u}");
        assert!(ideal < put, "Idealized is the floor: {ideal} vs {put}");
    }
}
