//! Parallel multi-seed trial execution and aggregation.

use std::collections::BTreeMap;

use pahoehoe::cluster::{Cluster, ConvergenceReport};
use simnet::RunOutcome;
use stats::{Accumulator, Summary};

/// Runs one seeded trial per value in `seeds`, in parallel across CPU
/// cores, and returns the convergence reports in seed order.
///
/// `build` constructs a fresh cluster for a seed; each trial runs
/// [`Cluster::run_to_convergence`]. Fan-out goes through the shared
/// deterministic sweep harness ([`simnet::sweep::map_indexed`]), so the
/// reports are in seed order regardless of worker scheduling.
pub fn run_many<F>(seeds: std::ops::Range<u64>, build: F) -> Vec<ConvergenceReport>
where
    F: Fn(u64) -> Cluster + Send + Sync,
{
    let seeds: Vec<u64> = seeds.collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    simnet::sweep::map_indexed(seeds, workers, |_, seed| {
        let mut cluster = build(seed);
        cluster.run_to_convergence()
    })
}

/// Aggregated results for one experiment configuration (one bar/column of
/// a paper figure): per-message-kind means plus run-level statistics.
///
/// Client↔proxy traffic (`Client*` kinds) is excluded, matching the
/// paper's accounting of "all activity from the proxy's put and all
/// convergence activity".
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Column label, e.g. `"FSAMR-U"` or `"2P-Sibling"`.
    pub label: String,
    /// Mean message count per kind.
    pub kind_counts: BTreeMap<&'static str, Summary>,
    /// Mean message bytes per kind.
    pub kind_bytes: BTreeMap<&'static str, Summary>,
    /// Mean dropped-message counts per kind, split fault vs. random loss.
    pub kind_drops: BTreeMap<&'static str, DropSummary>,
    /// Mean per-run totals of the dense protocol event counters (the
    /// delta-codec ledger: `deltas_encoded`, `delta_fallbacks`,
    /// `delta_bytes_saved`, ...). Empty when no trial recorded any.
    pub event_counts: BTreeMap<&'static str, Summary>,
    /// Total fault-dropped protocol messages per run.
    pub dropped_fault: Summary,
    /// Total randomly dropped protocol messages per run.
    pub dropped_random: Summary,
    /// Total protocol messages per run.
    pub total_count: Summary,
    /// Total protocol bytes per run.
    pub total_bytes: Summary,
    /// Virtual time to convergence (seconds).
    pub sim_secs: Summary,
    /// Put attempts per run.
    pub puts_attempted: Summary,
    /// Excess-AMR versions per run.
    pub excess_amr: Summary,
    /// Non-durable versions per run.
    pub non_durable: Summary,
    /// Whether every trial converged (`PredicateSatisfied`).
    pub all_converged: bool,
}

/// Whether a metric kind is client↔proxy traffic.
fn is_client_kind(kind: &str) -> bool {
    kind.starts_with("Client")
}

/// Mean per-kind drop counts for one configuration, split by cause.
#[derive(Debug, Clone, Copy)]
pub struct DropSummary {
    /// Messages dropped by an injected fault (outage, partition).
    pub fault: Summary,
    /// Messages dropped by the channel's random loss rate.
    pub random: Summary,
}

/// Aggregates trial reports into a [`ConfigResult`].
pub fn aggregate(label: impl Into<String>, reports: &[ConvergenceReport]) -> ConfigResult {
    assert!(!reports.is_empty(), "need at least one trial");
    let mut kind_counts: BTreeMap<&'static str, Accumulator> = BTreeMap::new();
    let mut kind_bytes: BTreeMap<&'static str, Accumulator> = BTreeMap::new();
    let mut kind_drop_accs: BTreeMap<&'static str, (Accumulator, Accumulator)> = BTreeMap::new();

    // Every kind must appear in every trial's accumulator (absent = 0),
    // so collect the kind universes first.
    let kinds: Vec<&'static str> = {
        let mut set = BTreeMap::new();
        for r in reports {
            for (k, _) in r.metrics.iter() {
                if !is_client_kind(k) {
                    set.insert(k, ());
                }
            }
        }
        set.into_keys().collect()
    };
    let drop_kinds: Vec<&'static str> = {
        let mut set = BTreeMap::new();
        for r in reports {
            for (k, _) in r.metrics.iter_drops() {
                if !is_client_kind(k) {
                    set.insert(k, ());
                }
            }
        }
        set.into_keys().collect()
    };
    let event_labels: Vec<&'static str> = {
        let mut set = BTreeMap::new();
        for r in reports {
            for (label, _) in r.metrics.iter_events() {
                set.insert(label, ());
            }
        }
        set.into_keys().collect()
    };
    let mut event_accs: BTreeMap<&'static str, Accumulator> = BTreeMap::new();

    let mut total_count = Accumulator::new();
    let mut total_bytes = Accumulator::new();
    let mut dropped_fault = Accumulator::new();
    let mut dropped_random = Accumulator::new();
    let mut sim_secs = Accumulator::new();
    let mut puts_attempted = Accumulator::new();
    let mut excess_amr = Accumulator::new();
    let mut non_durable = Accumulator::new();
    let mut all_converged = true;

    for r in reports {
        let mut count_sum = 0u64;
        let mut byte_sum = 0u64;
        for &k in &kinds {
            let s = r.metrics.kind(k);
            kind_counts.entry(k).or_default().push(s.count as f64);
            kind_bytes.entry(k).or_default().push(s.bytes as f64);
            count_sum += s.count;
            byte_sum += s.bytes;
        }
        total_count.push(count_sum as f64);
        total_bytes.push(byte_sum as f64);
        let mut fault_sum = 0u64;
        let mut random_sum = 0u64;
        for &k in &drop_kinds {
            let d = r.metrics.drops_for(k);
            let (fa, ra) = kind_drop_accs.entry(k).or_default();
            fa.push(d.fault_count as f64);
            ra.push(d.random_count as f64);
            fault_sum += d.fault_count;
            random_sum += d.random_count;
        }
        dropped_fault.push(fault_sum as f64);
        dropped_random.push(random_sum as f64);
        for &label in &event_labels {
            event_accs
                .entry(label)
                .or_default()
                .push(r.metrics.event(label) as f64);
        }
        sim_secs.push(r.sim_time.as_secs_f64());
        puts_attempted.push(r.puts_attempted as f64);
        excess_amr.push(r.excess_amr as f64);
        non_durable.push(r.non_durable as f64);
        all_converged &= r.outcome == RunOutcome::PredicateSatisfied;
    }

    ConfigResult {
        label: label.into(),
        kind_counts: kind_counts
            .into_iter()
            .map(|(k, a)| (k, a.summary()))
            .collect(),
        kind_bytes: kind_bytes
            .into_iter()
            .map(|(k, a)| (k, a.summary()))
            .collect(),
        kind_drops: kind_drop_accs
            .into_iter()
            .map(|(k, (fa, ra))| {
                (
                    k,
                    DropSummary {
                        fault: fa.summary(),
                        random: ra.summary(),
                    },
                )
            })
            .collect(),
        event_counts: event_accs
            .into_iter()
            .map(|(k, a)| (k, a.summary()))
            .collect(),
        dropped_fault: dropped_fault.summary(),
        dropped_random: dropped_random.summary(),
        total_count: total_count.summary(),
        total_bytes: total_bytes.summary(),
        sim_secs: sim_secs.summary(),
        puts_attempted: puts_attempted.summary(),
        excess_amr: excess_amr.summary(),
        non_durable: non_durable.summary(),
        all_converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pahoehoe::cluster::ClusterConfig;

    fn tiny(seed: u64) -> Cluster {
        let mut cfg = ClusterConfig::paper_default();
        cfg.workload_puts = 2;
        cfg.workload_value_len = 2048;
        Cluster::build(cfg, seed)
    }

    #[test]
    fn run_many_is_seed_ordered_and_deterministic() {
        let a = run_many(0..4, tiny);
        let b = run_many(0..4, tiny);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sim_time, y.sim_time);
            assert_eq!(x.metrics.total_count(), y.metrics.total_count());
        }
    }

    #[test]
    fn aggregate_excludes_client_traffic() {
        let reports = run_many(0..3, tiny);
        let agg = aggregate("test", &reports);
        assert!(agg.all_converged);
        assert!(agg.kind_counts.keys().all(|k| !k.starts_with("Client")));
        assert!(reports[0].metrics.kind("ClientPutReq").count > 0);
        // Totals equal the sum over kinds.
        let kind_sum: f64 = agg.kind_counts.values().map(|s| s.mean).sum();
        assert!((kind_sum - agg.total_count.mean).abs() < 1e-6);
    }

    #[test]
    fn aggregate_statistics_are_consistent() {
        let reports = run_many(0..5, tiny);
        let agg = aggregate("x", &reports);
        assert_eq!(agg.total_count.n, 5);
        assert!(agg.total_count.min <= agg.total_count.mean);
        assert!(agg.total_count.mean <= agg.total_count.max);
        assert_eq!(agg.puts_attempted.mean, 2.0, "failure-free: no retries");
        assert_eq!(agg.non_durable.mean, 0.0);
    }
}
