//! Media mix: the paper's stated object range on one cluster.
//!
//! Pahoehoe targets "binary large objects such as pictures, audio files
//! or movies of moderate size (~100 × 2¹⁰ B to 100 × 2²⁰ B)" (§2). This
//! example stores a heavy-tailed mixture from that range using the
//! [`Workload`](pahoehoe::workload::Workload) generator, then reports the
//! storage economics the paper's introduction promises: erasure coding at
//! the overhead of triple replication, with every object surviving eight
//! simultaneous disk failures.
//!
//! Run with: `cargo run --release --example media_mix`

use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::fs::{Fs, WAKE_TIMER_TAG};
use pahoehoe::workload::{SizeDistribution, Workload};
use simnet::SimDuration;

fn main() {
    let workload = Workload::new(30)
        .sizes(SizeDistribution::MediaMix)
        .key_prefix("media")
        .seed(2026);
    let user_bytes = workload.total_bytes();

    let mut cfg = ClusterConfig::paper_default();
    cfg.custom_workload = Some(workload.build());
    let mut cluster = Cluster::build(cfg, 2026);
    let report = cluster.run_to_convergence();

    println!("== media archive: 30 objects, heavy-tailed sizes ==");
    println!("user data:        {:>8} KiB", user_bytes / 1024);
    let stored = report.metrics.kind("StoreFragmentReq").bytes;
    println!(
        "stored fragments: {:>8} KiB  ({:.2}x overhead — triple-replication cost)",
        stored >> 10,
        stored as f64 / user_bytes as f64
    );
    println!(
        "all {} versions at maximum redundancy by {}",
        report.amr_versions, report.sim_time
    );
    assert_eq!(report.amr_versions, 30);

    // Destroy eight disks (the policy's stated tolerance: up to eight
    // simultaneous disk failures) and verify everything reads back.
    println!("\n== destroying 8 of 12 disks ==");
    let layout = cluster.layout();
    let mut destroyed = 0;
    'outer: for dc in 0..2 {
        for i in 0..3 {
            for disk in 0..2 {
                if destroyed == 8 {
                    break 'outer;
                }
                let id = layout.fs(dc, i);
                let now = cluster.sim().now();
                cluster
                    .sim_mut()
                    .actor_mut::<Fs>(id)
                    .destroy_disk(disk, now);
                cluster
                    .sim_mut()
                    .schedule_timer(id, SimDuration::ZERO, WAKE_TIMER_TAG);
                destroyed += 1;
            }
        }
    }
    // Reads succeed immediately from the surviving four fragments...
    let sample = workload.expected_value(7);
    let name = b"media/7";
    assert_eq!(cluster.get(name).as_deref(), Some(&sample[..]));
    println!("read after 8 disk losses: ok (any 4 of 12 fragments decode)");

    // ...and convergence rebuilds the destroyed disks in the background.
    let heal = cluster.run_to_convergence();
    assert_eq!(heal.durable_not_amr, 0);
    println!(
        "disks rebuilt: {} fragment retrievals, {} sibling pushes; all {} versions AMR again",
        heal.metrics.kind("RetrieveFragReq").count,
        heal.metrics.kind("SiblingStoreReq").count,
        heal.amr_versions
    );
}
