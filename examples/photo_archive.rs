//! Photo archive: the workload class that motivates Pahoehoe.
//!
//! The paper's introduction targets "cloud applications, like social
//! networking or photo sharing", storing blobs of roughly 100 KiB to
//! 100 MiB. This example archives a mixed batch of "photos", then
//! demonstrates the two headline properties:
//!
//! 1. **Durability at low cost** — the `(4, 12)` policy has the storage
//!    overhead of triple replication (3×) but survives the simultaneous
//!    unavailability of two-thirds of the fragment servers; we knock out
//!    four of six FSs and show every photo still readable.
//! 2. **Self-healing** — after the servers recover, convergence restores
//!    every object version to maximum redundancy without re-uploads.
//!
//! Run with: `cargo run --release --example photo_archive`

use pahoehoe::client::Client;
use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use simnet::{FaultPlan, SimDuration, SimTime};

fn main() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };

    // Schedule the disaster up front: four of the six FSs are dark for
    // the first ten minutes — the photos are archived *during* the
    // outage, so only a third of each code word lands initially.
    let mut faults = FaultPlan::none();
    for (dc, i) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        faults.add_node_outage(layout.fs(dc, i), SimTime::ZERO, SimDuration::from_mins(10));
    }

    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    let mut cluster = Cluster::build_with_faults(cfg, 2024, faults);

    // Archive a camera roll while the outage is active: sizes from
    // thumbnails to full resolution. Puts succeed as soon as k = 4
    // fragments are durable — exactly what the two surviving FSs hold.
    println!("== outage active: 4 of 6 fragment servers unreachable ==");
    let sizes = [8 * 1024, 48 * 1024, 120 * 1024, 360 * 1024, 1024 * 1024];
    let mut names = Vec::new();
    for (i, &size) in sizes.iter().cycle().take(20).enumerate() {
        let name = format!("roll/2026-07-07/IMG_{i:04}.jpg");
        let value = Client::synthetic_value(i as u64, size).to_vec();
        cluster.put(name.as_bytes(), value);
        names.push((name, size));
    }
    // Let the puts complete (well inside the outage window), then read
    // back with two-thirds of the fragment servers still dark.
    cluster
        .sim_mut()
        .run_until_time(SimTime::ZERO + SimDuration::from_mins(2));
    println!("== archived {} photos during the outage ==", names.len());
    let mut readable = 0;
    for (name, size) in names.iter().take(5) {
        match cluster.get(name.as_bytes()) {
            Some(v) => {
                assert_eq!(v.len(), *size);
                readable += 1;
                println!("  read {:32} ok under outage", name);
            }
            None => println!("  read {:32} FAILED", name),
        }
    }
    assert_eq!(readable, 5, "any 4 of 12 fragments reconstruct a photo");

    // Let the servers recover; convergence rebuilds the eight missing
    // fragments of every photo from the four that survived — one FS
    // retrieves k fragments and regenerates its siblings' shares too
    // (sibling fragment recovery, §4.2).
    let heal = cluster.run_to_convergence();
    println!("\n== healed at {} ==", heal.sim_time);
    println!(
        "  photos at maximum redundancy: {}/{} (excess versions: {})",
        heal.amr_versions - heal.excess_amr,
        names.len(),
        heal.excess_amr,
    );
    println!(
        "  recovery traffic: {} fragment retrievals, {} sibling pushes",
        heal.metrics.kind("RetrieveFragReq").count,
        heal.metrics.kind("SiblingStoreReq").count,
    );
    assert_eq!(heal.durable_not_amr, 0);
    assert!(heal.metrics.kind("SiblingStoreReq").count > 0);

    // Full-redundancy read: every photo decodes from any data center.
    let v = cluster.get(names[7].0.as_bytes()).expect("fully healed");
    assert_eq!(v.len(), names[7].1);
    println!("  post-heal read of {} verified", names[7].0);
}
