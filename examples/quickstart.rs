//! Quickstart: store and retrieve blobs in a simulated Pahoehoe cluster.
//!
//! Builds the paper's default deployment — two data centers, each with
//! two Key Lookup Servers and three Fragment Servers, objects erasure
//! coded `(k = 4, n = 12)` — puts a few objects, lets the system
//! converge, and reads them back.
//!
//! Run with: `cargo run --release --example quickstart`

use pahoehoe::cluster::{Cluster, ClusterConfig};

fn main() {
    // Paper-default cluster; seed makes the run reproducible.
    let mut cluster = Cluster::build(ClusterConfig::paper_default(), 7);

    println!("== Pahoehoe quickstart ==");
    println!(
        "cluster: {} DCs x ({} KLS + {} FS), policy {:?}",
        cluster.layout().dcs,
        cluster.layout().kls_per_dc,
        cluster.layout().fs_per_dc,
        cluster.config().policy,
    );

    // Store three objects.
    let objects: Vec<(&[u8], Vec<u8>)> = vec![
        (b"photos/cat.jpg", vec![0xCA; 64 * 1024]),
        (b"audio/song.mp3", vec![0x50; 200 * 1024]),
        (
            b"docs/readme.txt",
            b"hello, eventually consistent world".to_vec(),
        ),
    ];
    for (name, value) in &objects {
        cluster.put(name, value.clone());
        println!(
            "put  {:24} ({} bytes)",
            String::from_utf8_lossy(name),
            value.len()
        );
    }

    // Run until every version is at maximum redundancy (AMR).
    let report = cluster.run_to_convergence();
    println!(
        "\nconverged at sim time {} — {} versions AMR, {} messages, {} KiB on the wire",
        report.sim_time,
        report.amr_versions,
        report.metrics.total_count(),
        report.metrics.total_bytes() / 1024,
    );

    // Read everything back and verify.
    for (name, value) in &objects {
        let got = cluster.get(name).expect("object retrievable");
        assert_eq!(&got, value, "roundtrip mismatch");
        println!(
            "get  {:24} ok ({} bytes)",
            String::from_utf8_lossy(name),
            got.len()
        );
    }

    // A key that was never stored fails cleanly.
    assert_eq!(cluster.get(b"missing"), None);
    println!("get  {:24} -> not found (as expected)", "missing");
}
