//! Concurrent writers: two data centers, two proxies, one key.
//!
//! Pahoehoe orders concurrent puts by each proxy's loosely synchronized
//! clock, with the proxy's unique id as tie-breaker (§3.1): "this order
//! matches users' expected order for partitioned data centers when they
//! happen to access different ones during the partition". This example
//! partitions the two data centers, lets a user on each side update the
//! same profile document, then heals the partition and shows both sides
//! converging on the version with the newest timestamp — no lost update,
//! no split brain, and every server agreeing.
//!
//! Run with: `cargo run --release --example concurrent_writers`

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, ExtraProxy};
use simnet::{FaultPlan, NodeId, SimDuration, SimTime};

fn main() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };

    // A second proxy/client pair living in DC1 whose NTP clock runs 5
    // seconds ahead — well inside real-world sync error.
    let mut cfg = ClusterConfig::paper_default();
    cfg.extra_proxies = vec![ExtraProxy {
        dc: 1,
        clock_skew: SimDuration::from_secs(5),
    }];

    // Partition the data centers (each side keeps its own proxy+client).
    let mut side_a = layout.dc_nodes(0);
    side_a.push(layout.proxy());
    side_a.push(layout.client());
    let mut side_b = layout.dc_nodes(1);
    side_b.push(NodeId::new(layout.client().index() as u32 + 1)); // extra proxy
    side_b.push(NodeId::new(layout.client().index() as u32 + 2)); // extra client
    let mut faults = FaultPlan::none();
    faults.add_partition(&side_a, &side_b, SimTime::ZERO, SimDuration::from_mins(10));

    let mut cluster = Cluster::build_with_faults(cfg, 7, faults);

    println!("== WAN partition: users on both sides edit 'profile/alice' ==");
    cluster.put_from(0, b"profile/alice", b"status: hiking in DC1".to_vec());
    cluster.put(b"profile/alice", b"status: coding in DC0".to_vec());

    // Both writes succeed locally despite the partition.
    let report = cluster.run_to_convergence();
    println!(
        "both writes accepted ({} puts succeeded); partition healed at 600s;",
        report.puts_succeeded
    );
    println!(
        "converged at {} with {} versions at maximum redundancy",
        report.sim_time, report.amr_versions
    );
    assert_eq!(report.puts_succeeded, 2);
    assert_eq!(report.durable_not_amr, 0);

    // After healing, both sides read the same winner: DC1's version
    // carries the later timestamp (its clock runs ahead).
    let from_dc0 = cluster.get(b"profile/alice").expect("readable");
    let from_dc1 = cluster.get_from(0, b"profile/alice").expect("readable");
    assert_eq!(from_dc0, from_dc1, "no split brain");
    println!(
        "\nboth data centers now read: {:?}",
        String::from_utf8_lossy(&from_dc0)
    );
    assert_eq!(from_dc0, b"status: hiking in DC1".to_vec());
    println!("(DC1 won: its loosely synchronized clock stamped later)");
}
