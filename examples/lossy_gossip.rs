//! Lossy network: what eventual consistency costs as messages vanish.
//!
//! A compact version of the paper's §5.4 "thought experiment": sweep the
//! system-wide message drop rate and watch three quantities — how many
//! put attempts it takes to collect the workload's success replies, how
//! many *excess AMR* versions pile up (puts whose success answer was
//! lost, yet whose fragments converged anyway), and how rare truly
//! *non-durable* versions are even under egregious loss.
//!
//! Run with: `cargo run --release --example lossy_gossip`

use pahoehoe::cluster::{Cluster, ClusterConfig};
use simnet::NetworkConfig;
use stats::Accumulator;

fn main() {
    println!("== lossy network sweep (25 puts x 32 KiB, 5 seeds/rate) ==");
    println!(
        "{:>6}  {:>9}  {:>11}  {:>12}  {:>10}",
        "drop", "attempts", "excess AMR", "non-durable", "sim time"
    );
    for drop in [0.0, 0.05, 0.10, 0.15] {
        let mut attempts = Accumulator::new();
        let mut excess = Accumulator::new();
        let mut non_durable = Accumulator::new();
        let mut sim_secs = Accumulator::new();
        for seed in 0..5 {
            let mut cfg = ClusterConfig::paper_default();
            cfg.workload_puts = 25;
            cfg.workload_value_len = 32 * 1024;
            cfg.network = NetworkConfig::with_drop_rate(drop);
            let mut cluster = Cluster::build(cfg, seed);
            let report = cluster.run_to_convergence();
            assert_eq!(
                report.puts_succeeded, 25,
                "retries always reach 25 successes"
            );
            assert_eq!(
                report.durable_not_amr, 0,
                "eventual consistency: every durable version became AMR"
            );
            attempts.push(report.puts_attempted as f64);
            excess.push(report.excess_amr as f64);
            non_durable.push(report.non_durable as f64);
            sim_secs.push(report.sim_time.as_secs_f64());
        }
        println!(
            "{:>5.0}%  {:>9.1}  {:>11.1}  {:>12.1}  {:>8.0}s",
            drop * 100.0,
            attempts.mean(),
            excess.mean(),
            non_durable.mean(),
            sim_secs.mean(),
        );
    }
    println!(
        "\nTakeaway: loss inflates retries and leaves behind extra \
         converged versions,\nbut convergence still drives every durable \
         version to maximum redundancy."
    );
}
