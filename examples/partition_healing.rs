//! WAN partition: availability during the split, convergence after.
//!
//! Pahoehoe's reason to exist (§1): by the CAP theorem a storage system
//! cannot be consistent, available and partition-tolerant at once, and
//! Pahoehoe picks availability + partition-tolerance with *eventual*
//! consistency. This example severs the two data centers, shows that puts
//! and gets keep completing on the proxy's side of the partition, then
//! heals the link and watches the convergence protocol bring every
//! version written during the partition to maximum redundancy — with the
//! sibling-fragment-recovery optimization keeping cross-WAN traffic to a
//! single `k`-fragment retrieval per object version.
//!
//! Run with: `cargo run --release --example partition_healing`

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use simnet::{FaultPlan, SimDuration, SimTime};

fn main() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };

    // Partition DC0 (with the proxy and client) from DC1 for 15 minutes,
    // starting immediately.
    let partition = SimDuration::from_mins(15);
    let mut side_a = layout.dc_nodes(0);
    side_a.push(layout.proxy());
    side_a.push(layout.client());
    let mut faults = FaultPlan::none();
    faults.add_partition(&side_a, &layout.dc_nodes(1), SimTime::ZERO, partition);

    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    let mut cluster = Cluster::build_with_faults(cfg, 99, faults);

    println!("== WAN partition active: DC0 | DC1 ==");
    // Writes during the partition: only DC0's six fragment slots are
    // reachable, which is enough for durability (any k=4 recover).
    for i in 0..10u32 {
        let name = format!("during-partition/{i}");
        cluster.put(name.as_bytes(), vec![i as u8; 50 * 1024]);
    }
    // Reads work too: the six local fragments decode the value.
    // (Run the workload first so there is something to read.)
    let mid = cluster
        .sim_mut()
        .run_until_time(SimTime::ZERO + SimDuration::from_mins(5));
    let _ = mid;
    let v = cluster.get(b"during-partition/3").expect("readable in DC0");
    assert_eq!(v, vec![3u8; 50 * 1024]);
    println!("put x10 and get succeeded with DC1 unreachable");

    // During the partition, versions are durable but *not* AMR: DC1 has
    // neither metadata nor fragments.
    let pre = cluster.report(simnet::RunOutcome::DeadlineReached);
    println!(
        "before healing: {} versions AMR, {} durable-but-not-AMR",
        pre.amr_versions, pre.durable_not_amr
    );
    assert_eq!(pre.amr_versions, 0);
    assert_eq!(pre.durable_not_amr, 10);

    // Heal and converge.
    let report = cluster.run_to_convergence();
    println!("\n== partition healed at {} ==", partition);
    println!(
        "converged at {}: {} versions AMR ({} still not AMR)",
        report.sim_time, report.amr_versions, report.durable_not_amr
    );
    assert_eq!(report.amr_versions, 10);
    assert_eq!(report.durable_not_amr, 0);

    // Sibling fragment recovery: one FS per version fetched k fragments
    // across the WAN and pushed the regenerated siblings over the LAN.
    let m = &report.metrics;
    println!(
        "recovery traffic: {} RetrieveFragReq ({} KiB replies), {} SiblingStoreReq ({} KiB)",
        m.kind("RetrieveFragReq").count,
        m.kind("RetrieveFragRep").bytes >> 10,
        m.kind("SiblingStoreReq").count,
        m.kind("SiblingStoreReq").bytes >> 10,
    );
    assert!(m.kind("SiblingStoreReq").count > 0);

    // And the healed copy is byte-identical.
    let v = cluster
        .get(b"during-partition/7")
        .expect("readable anywhere");
    assert_eq!(v, vec![7u8; 50 * 1024]);
    println!("post-heal read verified");
}
